"""The replicated store on the cluster harness, faults included.

:class:`KVCluster` specializes :class:`repro.sim.network.Cluster` for
the sharded store: every node runs a :class:`~repro.kv.store.KVStore`
process, client requests are routed to a live owner of the key's shard
(a smart client with a copy of the ring), and convergence is judged
**per shard** — each replica group must agree on its shard's keyspace,
while replicas that do not own a shard hold nothing for it.

All of the base cluster's machinery applies unchanged: the pluggable
transport (deterministic event-driven simulation by default, real
localhost TCP sockets with ``transport="tcp"``), the
:class:`~repro.sim.metrics.MetricsCollector` byte/unit accounting,
message loss, and the fault-injection API
(:meth:`~repro.sim.network.Cluster.crash`, :meth:`partition`,
:meth:`heal`, :meth:`recover`).  Combined with the scheduler's repair
machinery — blanket full-state pushes on a timer, or divergence-driven
digest probes that ship only the missing join decomposition — this is
the partition/recovery harness: sever a replica group, keep writing on
both sides, heal, drain, and the group converges for any inner
synchronization protocol.

What a replica rebuilt by ``crash(lose_state=True)`` comes back holding
is the cluster's **recovery policy** (:data:`RECOVERY_POLICIES`):

* ``"repair"`` — no durability layer; the rebuilt replica restarts from
  bottom and anti-entropy repair rebuilds everything over the network
  (the pre-WAL behaviour, and the baseline the others are measured
  against);
* ``"wal"`` — every store writes a per-shard
  :class:`~repro.wal.ReplicaWal` of its encoded deltas; the rebuilt
  replica replays that log locally and repair covers only the
  divergence accrued while it was down (plus the log's torn tail);
* ``"wal+repair"`` — replay as above, then mark every δ-path suspect so
  the recovered replica immediately root-probes its co-owners to
  *verify* the replay instead of trusting it.

Membership is live: :meth:`KVCluster.add_replica` and
:meth:`KVCluster.decommission_replica` swap the consistent-hash ring
mid-run and drive one shard handoff per moved (shard, gaining-owner)
pair — the old owner ships a compacted WAL segment, the gaining owner
replays it, and the leaver fences its logs — while client requests
route against the new placement throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple, Union

from repro.codec import encode
from repro.net.transport import Transport

from repro.kv.antientropy import AntiEntropyConfig
from repro.kv.ring import HashRing
from repro.kv.store import KVRoutingError, KVStore, KVUpdate, kv_store_factory
from repro.kv.types import Schema
from repro.lattice.base import Lattice
from repro.lattice.map_lattice import MapLattice
from repro.obs.lag import ConvergenceProbe
from repro.obs.metrics import MetricsRegistry
from repro.sim.network import Cluster, ClusterConfig, _normalize_trace
from repro.sim.topology import Topology, full_mesh
from repro.wal import ReplicaWal, Storage, WalConfig

#: Valid lose-state recovery policies (see the module docstring).
RECOVERY_POLICIES = ("repair", "wal", "wal+repair")


class Unavailable(RuntimeError):
    """No live owner of the key's shard is reachable."""


@dataclass(frozen=True)
class RebalanceReport:
    """What one live membership change planned.

    The handoff protocol itself runs asynchronously over the following
    rounds (drive the cluster and :meth:`KVCluster.converged` judges
    completion); this report captures the *placement* consequence —
    which shards moved, who ships what to whom — plus the byte cost a
    naive scheme would have paid, for the handoff-vs-blanket comparison.

    Attributes:
        added: The joining replica (``None`` for a decommission).
        removed: The leaving replica (``None`` for an add).
        old_replicas: Ring membership before the change.
        new_replicas: Ring membership after it.
        n_shards: The ring's shard count (for ``moved_fraction``).
        moved_shards: Shards whose owner group changed.
        transfers: Planned handoffs ``(shard, source, gaining)``.
        unsourced: ``(shard, gaining)`` pairs with no live old owner to
            ship from — the shard starts *empty* at its new owners.
            The crashed old owners' WALs are left unfenced (see
            :meth:`KVCluster.decommission_replica`), so the content is
            recoverable by an operator, but nothing re-ships it
            automatically; a non-empty ``unsourced`` is a signal to
            recover owners first and rebalance again.
        naive_fullstate_bytes: What shipping a live state object from
            *every* live old owner to every gaining owner would cost
            (encoded bytes) — the blanket-transfer baseline the
            WAL-segment handoff is measured against.
    """

    added: Optional[int]
    removed: Optional[int]
    old_replicas: Tuple[int, ...]
    new_replicas: Tuple[int, ...]
    n_shards: int
    moved_shards: Tuple[int, ...]
    transfers: Tuple[Tuple[int, int, int], ...]
    unsourced: Tuple[Tuple[int, int], ...]
    naive_fullstate_bytes: int

    @property
    def moved_fraction(self) -> float:
        """Fraction of shards that changed owners (~replication/n)."""
        return len(self.moved_shards) / self.n_shards


class KVCluster(Cluster):
    """A simulated cluster of sharded store replicas.

    Args:
        ring: Placement of shards onto the cluster's node indices; its
            replica set must be a subset of the topology's nodes
            ``0..n-1`` (a proper subset leaves spare nodes to
            :meth:`add_replica` later, and is also the state a
            :meth:`decommission_replica` leaves behind).
        inner_factory: Synchronizer factory run per shard per owner
            (any entry of :data:`repro.sync.ALGORITHMS` or friends).
        topology: Overlay connecting the replicas; defaults to a full
            mesh, the common case for a store whose replica groups are
            ring-scattered.  Every replica group must be connected.
        schema: Key typing; defaults to the prefix conventions.
        antientropy: Scheduler knobs (budget, batching, repair).
        config: Full simulation config; overrides ``topology``.
        transport: ``"sim"`` (default), ``"tcp"``, or a constructed
            :class:`~repro.net.transport.Transport`.
        recovery: Lose-state recovery policy, one of
            :data:`RECOVERY_POLICIES`; the WAL policies give every
            store a durable per-shard delta log that survives rebuilds.
        wal_storage: ``replica index → Storage`` factory for the WAL
            backends (defaults to one in-memory store per replica, so
            the simulator stays deterministic and fast; inject
            :class:`~repro.wal.FileStorage` for real segment files).
        wal_config: Log knobs (compaction threshold).
        trace: Structured tracing (see :class:`~repro.sim.network.
            Cluster`); here the tracer additionally reaches the stores
            (repair escalations, handoff protocol), the WALs
            (commit/compact/replay), and the convergence-lag probe.
        timing: Hot-path timers; ``None`` follows ``trace``.
    """

    def __init__(
        self,
        ring: HashRing,
        inner_factory,
        *,
        topology: Optional[Topology] = None,
        schema: Optional[Schema] = None,
        antientropy: Optional[AntiEntropyConfig] = None,
        config: Optional[ClusterConfig] = None,
        transport: Union[str, Transport] = "sim",
        recovery: str = "repair",
        wal_storage: Optional[Callable[[int], Storage]] = None,
        wal_config: Optional[WalConfig] = None,
        trace=None,
        timing: Optional[bool] = None,
    ) -> None:
        if config is None:
            if topology is None:
                # One node per index up to the highest ring member: rings
                # over a contiguous 0..n-1 get the historical mesh, rings
                # over a subset still get every member a seat.
                topology = full_mesh(max(ring.replicas) + 1)
            config = ClusterConfig(topology=topology)
        out_of_range = [r for r in ring.replicas if not 0 <= r < config.topology.n]
        if out_of_range:
            raise ValueError(
                "the ring must place shards on the topology's node indices "
                f"0..{config.topology.n - 1}, got out-of-range {out_of_range}"
            )
        if recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_POLICIES}, got {recovery!r}"
            )
        if recovery == "repair" and (wal_storage is not None or wal_config is not None):
            # Silently accepting the storage would let a caller believe
            # their writes are durable while no log is ever created.
            raise ValueError(
                "wal_storage/wal_config require a WAL recovery policy "
                f"(recovery='wal' or 'wal+repair'), got recovery={recovery!r}"
            )
        self.ring = ring
        self.recovery = recovery
        self._antientropy = (
            antientropy if antientropy is not None else AntiEntropyConfig()
        )
        #: The durable log of each replica, keyed by index.  Created
        #: lazily by the factory and *never* dropped on a rebuild —
        #: the log surviving the crash is the whole point.
        self._wals: Dict[int, ReplicaWal] = {}
        self._wal_storage = wal_storage
        self._wal_config = wal_config if wal_config is not None else WalConfig()
        # Normalized *before* super().__init__: the store factory below
        # closes over the tracer, and the base constructor builds every
        # store.  Passing the built Tracer up keeps one shared instance.
        kv_tracer = _normalize_trace(trace)
        #: Per-replica metrics registries.  Like the WALs, these are
        #: keyed by index and *never* dropped on a rebuild — counters
        #: use get-or-create, so a store incarnation lost to
        #: ``crash(lose_state=True)`` leaves its counts behind and the
        #: rebuilt store keeps incrementing them.  This is what lets
        #: :meth:`scheduler_stats` sum whole-run traffic without any
        #: retired-counter bookkeeping.
        self._registries: Dict[int, MetricsRegistry] = {}
        #: Convergence-lag probe: open per-shard disagreement windows,
        #: measured in rounds (``None`` when tracing is off).
        self._lag_probe: Optional[ConvergenceProbe] = (
            ConvergenceProbe() if kv_tracer is not None else None
        )
        factory = kv_store_factory(
            # A provider, not the ring object: a store rebuilt after a
            # live rebalance must open on the *current* placement.
            lambda: self.ring,
            inner_factory,
            schema=schema,
            antientropy=antientropy,
            wal_provider=self._wal_for if recovery != "repair" else None,
            registry_provider=self._registry_for,
            tracer=kv_tracer,
        )
        super().__init__(
            config,
            factory,
            MapLattice(),
            transport=transport,
            trace=kv_tracer,
            timing=timing,
        )

    def _registry_for(self, replica: int) -> MetricsRegistry:
        registry = self._registries.get(replica)
        if registry is None:
            registry = MetricsRegistry()
            self._registries[replica] = registry
        return registry

    def _wal_for(self, replica: int) -> ReplicaWal:
        wal = self._wals.get(replica)
        if wal is None:
            storage = (
                self._wal_storage(replica) if self._wal_storage is not None else None
            )
            wal = ReplicaWal(
                replica,
                storage=storage,
                config=self._wal_config,
                tracer=self.tracer,
            )
            self._wals[replica] = wal
        return wal

    def _restore_for(self, node: int):
        """WAL recovery: replay the surviving log into the fresh store."""
        wal = self._wals.get(node)
        if wal is None:
            return None
        verify = self.recovery == "wal+repair"

        def restore(store) -> None:
            assert isinstance(store, KVStore)
            # replay_wal enforces the group-commit crash boundary
            # itself (staged-but-uncommitted records are discarded).
            store.replay_wal(verify=verify)

        return restore

    # ------------------------------------------------------------------
    # Live membership changes: ring rebalancing with shard handoff.
    # ------------------------------------------------------------------

    def add_replica(self, node: int) -> RebalanceReport:
        """Bring topology node ``node`` into the ring mid-run.

        Placement shifts minimally (:meth:`~repro.kv.ring.HashRing.
        with_replica`); for every moved shard an old owner ships the
        gaining replica a compacted WAL segment through the handoff
        protocol over the following rounds, while client traffic keeps
        flowing against the new ring.
        """
        if not 0 <= node < self.topology.n:
            raise ValueError(
                f"no topology node {node} to add (nodes: 0..{self.topology.n - 1})"
            )
        if node in self.down:
            raise ValueError(f"cannot add crashed node {node}; recover it first")
        return self._rebalance(self.ring.with_replica(node), added=node)

    def decommission_replica(self, node: int) -> RebalanceReport:
        """Retire ``node`` from the ring mid-run.

        The leaver sources one handoff per shard it held; once the
        gaining owners acknowledge, it fences and truncates its shard
        logs and ends empty (the node itself stays in the topology and
        may be re-added later).

        Decommissioning a *crashed* replica is allowed — the dead-node
        removal every ring-based store needs — but it cannot source
        handoffs: surviving co-owners ship the moved shards instead,
        any shard with no live owner is reported ``unsourced`` (it
        starts empty at its new owners), and the dead node's WAL is
        deliberately left unfenced so an operator can still recover it
        and re-add it.  Prefer ``recover`` + decommission when the
        node's disk is intact.
        """
        return self._rebalance(self.ring.without_replica(node), removed=node)

    def _rebalance(
        self,
        new_ring: HashRing,
        *,
        added: Optional[int] = None,
        removed: Optional[int] = None,
    ) -> RebalanceReport:
        """Swap the ring everywhere and plan the shard handoffs.

        Repair must be enabled: handoff covers the moved content, but
        the δ-buffers discarded when surviving owners rebuild their
        shard synchronizers — and any handoff abandoned to a crash —
        re-converge through the repair path, so a rebalance without one
        could silently strand novelty.
        """
        if self._antientropy.repair_interval < 1:
            raise ValueError(
                "live rebalancing requires repair: construct the cluster "
                "with AntiEntropyConfig(repair_interval >= 1) so handoff "
                "gaps (discarded δ-buffers, lost frames, crashes) are "
                "re-converged"
            )
        old_ring = self.ring
        moved = tuple(old_ring.moved_shards(new_ring))
        # Validate the new placement against the overlay *before* any
        # state changes: apply_ring below runs per node, and a
        # connectivity error surfacing mid-loop would leave the cluster
        # half-rebalanced (some stores on the new ring, some on the
        # old).  Only moved shards need checking — unmoved groups were
        # valid under the old ring and neighbourhoods don't change.
        for shard in moved:
            group = new_ring.shard_owners(shard)
            for member in group:
                reachable = set(self.topology.neighbors(member)) | {member}
                missing = [peer for peer in group if peer not in reachable]
                if missing:
                    raise ValueError(
                        f"rebalance would place shard {shard} on group "
                        f"{group}, but replica {member} cannot reach "
                        f"{missing}; the topology must connect every "
                        "replica group"
                    )
        transfers: List[Tuple[int, int, int]] = []
        unsourced: List[Tuple[int, int]] = []
        naive_bytes = 0
        def shard_copy(node, shard):
            store = self.nodes[node]
            assert isinstance(store, KVStore)
            return store.shards.get(shard) or store._fencing.get(shard)

        def has_content(node, shard):
            inner = shard_copy(node, shard)
            return inner is not None and not inner.state.is_bottom

        for shard in moved:
            old_owners = old_ring.shard_owners(shard)
            new_owners = set(new_ring.shard_owners(shard))
            gaining = sorted(r for r in new_owners if r not in old_owners)
            if not gaining:
                continue
            live_old = [o for o in old_owners if o not in self.down]
            # A source from an *earlier* overlapping rebalance may still
            # hold the shard in its fencing set — possibly the only
            # replica with the content when its own segment never
            # shipped (the current ring's owner is still empty).
            retained = [
                node
                for node in range(self.topology.n)
                if node not in self.down
                and node not in old_owners
                and shard in self.nodes[node]._fencing
            ]
            live_losing = [o for o in live_old if o not in new_owners]
            remaining = [o for o in live_old if o in new_owners]
            # Preference order: the leaving owner (shipping is its exit
            # path and its segment carries novelty only it held), then a
            # retained earlier source, then an owner staying put — but a
            # candidate that actually holds content always beats an
            # empty one, whatever its category.
            ordered = live_losing + retained + remaining
            if not ordered:
                unsourced.extend((shard, g) for g in gaining)
                continue
            sources = [c for c in ordered if has_content(c, shard)] or ordered
            # The baseline a naive transfer pays: every content-capable
            # old holder pushes its full state object to every gaining
            # owner.
            per_gaining = sum(
                len(encode(shard_copy(o, shard).state))
                for o in (live_old or retained)
            )
            for index, g in enumerate(gaining):
                transfers.append((shard, sources[index % len(sources)], g))
                naive_bytes += per_gaining
        # A source keeps serving a shard it no longer owns until the
        # gaining owner acknowledges; everyone else fences immediately.
        retain: Dict[int, set] = {}
        for shard, source, _ in transfers:
            if source not in new_ring.shard_owners(shard):
                retain.setdefault(source, set()).add(shard)
        self.ring = new_ring
        if self.tracer is not None:
            self.tracer.emit(
                "ring-change",
                extra={
                    "added": added,
                    "removed": removed,
                    "moved_shards": len(moved),
                    "transfers": len(transfers),
                    "unsourced": len(unsourced),
                    "replicas": sorted(new_ring.replicas),
                },
            )
        for node in range(self.topology.n):
            self.runtimes[node].apply_ring(
                new_ring,
                retain=frozenset(retain.get(node, ())),
                # A crashed replica may hold the only durable copy of a
                # shard no live owner can source (``unsourced``):
                # reshape it, but leave its logs untouched so an
                # operator can still recover the node and re-add it.
                fence=node not in self.down,
            )
        for shard, source, gaining in transfers:
            store = self.nodes[source]
            assert isinstance(store, KVStore)
            store.begin_handoff(shard, gaining)
        return RebalanceReport(
            added=added,
            removed=removed,
            old_replicas=old_ring.replicas,
            new_replicas=new_ring.replicas,
            n_shards=new_ring.n_shards,
            moved_shards=moved,
            transfers=tuple(transfers),
            unsourced=tuple(unsourced),
            naive_fullstate_bytes=naive_bytes,
        )

    def pending_handoffs(self) -> int:
        """Handoffs still in flight at live replicas.

        Down replicas are excluded: they cannot make progress until
        recovered, and their queues resume then.
        """
        total = 0
        for index, node in enumerate(self.nodes):
            if index in self.down:
                continue
            assert isinstance(node, KVStore)
            total += node.scheduler.pending_handoffs()
        return total

    def drain(self) -> int:
        """Drain to convergence *and* let outstanding handoffs settle.

        State convergence can precede protocol completion: digest
        repair may fill a gaining owner before its segment ships, while
        the source still awaits the acknowledgement that lets it fence
        its log.  And a late segment can carry novelty the gaining
        owner drains rather than propagates, breaking the convergence
        the first pass established — so the two conditions are
        re-checked together until both hold in the same round.
        """
        rounds = super().drain()
        for _ in range(self.config.max_drain_rounds):
            if not self.pending_handoffs() and self.converged():
                break
            self.run_round(updates=None)
            rounds += 1
        if self.pending_handoffs():
            raise RuntimeError(
                f"{self.pending_handoffs()} shard handoffs failed to settle "
                f"within {self.config.max_drain_rounds} extra drain rounds"
            )
        if not self.converged():
            raise RuntimeError(
                "no post-handoff convergence within "
                f"{self.config.max_drain_rounds} extra drain rounds"
            )
        return rounds

    def run_round(self, updates=None) -> None:
        super().run_round(updates)
        if self._lag_probe is not None:
            self._sample_lag()

    def _sample_lag(self) -> None:
        """Feed per-shard root-hash agreement into the lag probe.

        Agreement is judged the same way digest repair's cheapest rung
        does — equal Merkle roots over the shard's irreducible digest —
        so a ``lag`` event of *n* rounds means digest probes would have
        seen divergence for exactly that window.  Runs only when
        tracing is on; roots come from each store's incremental digest
        cache, so a quiescent shard costs one identity check per owner
        per round instead of a full decomposition.
        """
        agreement: Dict[int, bool] = {}
        for shard in range(self.ring.n_shards):
            roots = set()
            for owner in self.ring.shard_owners(shard):
                if owner in self.down:
                    continue
                root = self.nodes[owner].shard_root(shard)
                if root is not None:
                    roots.add(root)
            agreement[shard] = len(roots) <= 1
        round_index = self.rounds_run - 1
        for shard, lag in self._lag_probe.observe(round_index, agreement):
            self.tracer.emit(
                "lag", round=round_index, shard=shard, extra={"rounds": lag}
            )

    # ------------------------------------------------------------------
    # Smart-client request routing.
    # ------------------------------------------------------------------

    def live_owners(self, key: Hashable) -> Tuple[int, ...]:
        """The key's owner group with crashed replicas filtered out."""
        return tuple(o for o in self.ring.owners(key) if o not in self.down)

    def _coordinator(self, key: Hashable) -> int:
        owners = self.live_owners(key)
        if not owners:
            raise Unavailable(
                f"all owners {self.ring.owners(key)} of key {key!r} are down"
            )
        return owners[0]

    def update(self, key: Hashable, op: str, *args) -> Lattice:
        """Apply a typed write at the first live owner; return the δ."""
        return self.apply_update(
            self._coordinator(key), KVUpdate(key, op, tuple(args))
        )

    def remove(self, key: Hashable) -> Lattice:
        """Remove ``key`` at the first live owner (observed-remove types)."""
        node = self.nodes[self._coordinator(key)]
        assert isinstance(node, KVStore)
        return node.remove(key)

    def value(self, key: Hashable, *, read_replica: Optional[int] = None) -> Any:
        """Read the typed value of ``key`` from one replica.

        Args:
            key: The key to read.
            read_replica: Which owner answers.  ``None`` (default)
                routes like a smart client: the key's first *live*
                owner.  An explicit replica index must be a live owner
                of the key's shard — anything else raises
                :class:`~repro.kv.store.KVRoutingError` (not an owner)
                or :class:`Unavailable` (owner, but down).

        **Staleness contract.**  Every read is served from a single
        replica's local state with no quorum or read-repair, so it is
        *eventually consistent*: it reflects all writes that replica has
        locally applied — its own coordinated writes, plus whatever
        anti-entropy has delivered — and may miss writes coordinated
        elsewhere that are still in flight.  Under round-stepped
        execution a read taken between rounds is at most one
        synchronization interval stale on a healthy cluster, because
        every round settles to quiescence.  Under free-running
        execution (``transport="free"``) there is **no settling**:
        replicas sync on drifting timers and a read may trail a remote
        write by several intervals — the convergence-lag probe measures
        exactly this window.  Reads from different replicas (or the
        same replica across partitions/crashes) may disagree until
        anti-entropy converges; what never happens is a *rollback* —
        per replica, successive reads of a CRDT value only move up the
        lattice order.  Pin ``read_replica`` to observe one replica's
        monotone timeline; leave it ``None`` for availability.
        """
        if read_replica is None:
            owner = self._coordinator(key)
        else:
            owners = self.ring.owners(key)
            if read_replica not in owners:
                raise KVRoutingError(
                    f"replica {read_replica} does not own key {key!r} "
                    f"(owners: {list(owners)})"
                )
            if read_replica in self.down:
                raise Unavailable(
                    f"read replica {read_replica} of key {key!r} is down"
                )
            owner = read_replica
        node = self.nodes[owner]
        assert isinstance(node, KVStore)
        return node.get(key)

    # ------------------------------------------------------------------
    # Per-shard convergence.
    # ------------------------------------------------------------------

    def shard_states(self, shard: int) -> List[Lattice]:
        """The shard's keyspace as held by each live owner."""
        return [
            self.nodes[owner].shards[shard].state
            for owner in self.ring.shard_owners(shard)
            if owner not in self.down
        ]

    def shard_converged(self, shard: int) -> bool:
        """True when every live owner of ``shard`` agrees on it."""
        states = self.shard_states(shard)
        return all(state == states[0] for state in states[1:])

    def converged(self) -> bool:
        """Per-shard agreement across every replica group (live members)."""
        return all(
            self.shard_converged(shard) for shard in range(self.ring.n_shards)
        )

    def key_converged(self, key: Hashable) -> bool:
        """True when the key's replica group agrees on its value."""
        return self.shard_converged(self.ring.shard_of(key))

    def scheduler_stats(self) -> dict:
        """Cluster-wide sums of every store's scheduler counters.

        Includes the repair-byte accounting (``repair_payload_bytes``,
        ``repair_metadata_bytes``, ``probes``, ``repairs``) that the
        repair-mode comparisons measure.  A thin adapter over the
        per-replica metrics registries: the registries — like the WALs
        — survive ``crash(lose_state=True)`` rebuilds, so the sums
        cover the whole run across store incarnations with no retired-
        counter bookkeeping.
        """
        totals: dict = {}
        prefix = "scheduler."
        for registry in self._registries.values():
            for name, value in registry.snapshot().items():
                if name.startswith(prefix):
                    key = name[len(prefix):]
                    totals[key] = totals.get(key, 0) + value
        return totals

    def wal_stats(self) -> dict:
        """Cluster-wide sums of the per-replica WAL counters.

        Empty under the ``"repair"`` policy (no logs exist).  The log
        objects survive rebuilds, so — unlike the scheduler counters —
        nothing needs retiring at crash time.
        """
        totals: dict = {}
        for wal in self._wals.values():
            for key, value in wal.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def merged_keyspace(self) -> MapLattice:
        """The join of every live replica's keyspace — the global view."""
        merged = MapLattice()
        for index, node in enumerate(self.nodes):
            if index in self.down:
                continue
            assert isinstance(node, KVStore)
            merged = merged.join(node.state)
        return merged
