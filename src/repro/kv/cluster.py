"""The replicated store on the cluster harness, faults included.

:class:`KVCluster` specializes :class:`repro.sim.network.Cluster` for
the sharded store: every node runs a :class:`~repro.kv.store.KVStore`
process, client requests are routed to a live owner of the key's shard
(a smart client with a copy of the ring), and convergence is judged
**per shard** — each replica group must agree on its shard's keyspace,
while replicas that do not own a shard hold nothing for it.

All of the base cluster's machinery applies unchanged: the pluggable
transport (deterministic event-driven simulation by default, real
localhost TCP sockets with ``transport="tcp"``), the
:class:`~repro.sim.metrics.MetricsCollector` byte/unit accounting,
message loss, and the fault-injection API
(:meth:`~repro.sim.network.Cluster.crash`, :meth:`partition`,
:meth:`heal`, :meth:`recover`).  Combined with the scheduler's repair
machinery — blanket full-state pushes on a timer, or divergence-driven
digest probes that ship only the missing join decomposition — this is
the partition/recovery harness: sever a replica group, keep writing on
both sides, heal, drain, and the group converges for any inner
synchronization protocol.

What a replica rebuilt by ``crash(lose_state=True)`` comes back holding
is the cluster's **recovery policy** (:data:`RECOVERY_POLICIES`):

* ``"repair"`` — no durability layer; the rebuilt replica restarts from
  bottom and anti-entropy repair rebuilds everything over the network
  (the pre-WAL behaviour, and the baseline the others are measured
  against);
* ``"wal"`` — every store writes a per-shard
  :class:`~repro.wal.ReplicaWal` of its encoded deltas; the rebuilt
  replica replays that log locally and repair covers only the
  divergence accrued while it was down (plus the log's torn tail);
* ``"wal+repair"`` — replay as above, then mark every δ-path suspect so
  the recovered replica immediately root-probes its co-owners to
  *verify* the replay instead of trusting it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple, Union

from repro.net.transport import Transport

from repro.kv.antientropy import AntiEntropyConfig
from repro.kv.ring import HashRing
from repro.kv.store import KVStore, KVUpdate, kv_store_factory
from repro.kv.types import Schema
from repro.lattice.base import Lattice
from repro.lattice.map_lattice import MapLattice
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.topology import Topology, full_mesh
from repro.wal import ReplicaWal, Storage, WalConfig

#: Valid lose-state recovery policies (see the module docstring).
RECOVERY_POLICIES = ("repair", "wal", "wal+repair")


class Unavailable(RuntimeError):
    """No live owner of the key's shard is reachable."""


class KVCluster(Cluster):
    """A simulated cluster of sharded store replicas.

    Args:
        ring: Placement of shards onto the cluster's node indices; its
            replica set must be exactly ``0..n-1`` of the topology.
        inner_factory: Synchronizer factory run per shard per owner
            (any entry of :data:`repro.sync.ALGORITHMS` or friends).
        topology: Overlay connecting the replicas; defaults to a full
            mesh, the common case for a store whose replica groups are
            ring-scattered.  Every replica group must be connected.
        schema: Key typing; defaults to the prefix conventions.
        antientropy: Scheduler knobs (budget, batching, repair).
        config: Full simulation config; overrides ``topology``.
        transport: ``"sim"`` (default), ``"tcp"``, or a constructed
            :class:`~repro.net.transport.Transport`.
        recovery: Lose-state recovery policy, one of
            :data:`RECOVERY_POLICIES`; the WAL policies give every
            store a durable per-shard delta log that survives rebuilds.
        wal_storage: ``replica index → Storage`` factory for the WAL
            backends (defaults to one in-memory store per replica, so
            the simulator stays deterministic and fast; inject
            :class:`~repro.wal.FileStorage` for real segment files).
        wal_config: Log knobs (compaction threshold).
    """

    def __init__(
        self,
        ring: HashRing,
        inner_factory,
        *,
        topology: Optional[Topology] = None,
        schema: Optional[Schema] = None,
        antientropy: Optional[AntiEntropyConfig] = None,
        config: Optional[ClusterConfig] = None,
        transport: Union[str, Transport] = "sim",
        recovery: str = "repair",
        wal_storage: Optional[Callable[[int], Storage]] = None,
        wal_config: Optional[WalConfig] = None,
    ) -> None:
        if config is None:
            if topology is None:
                topology = full_mesh(len(ring.replicas))
            config = ClusterConfig(topology=topology)
        if ring.replicas != tuple(range(config.topology.n)):
            raise ValueError(
                "the ring must place shards on the topology's node indices "
                f"0..{config.topology.n - 1}, got {ring.replicas}"
            )
        if recovery not in RECOVERY_POLICIES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_POLICIES}, got {recovery!r}"
            )
        if recovery == "repair" and (wal_storage is not None or wal_config is not None):
            # Silently accepting the storage would let a caller believe
            # their writes are durable while no log is ever created.
            raise ValueError(
                "wal_storage/wal_config require a WAL recovery policy "
                f"(recovery='wal' or 'wal+repair'), got recovery={recovery!r}"
            )
        self.ring = ring
        self.recovery = recovery
        #: The durable log of each replica, keyed by index.  Created
        #: lazily by the factory and *never* dropped on a rebuild —
        #: the log surviving the crash is the whole point.
        self._wals: Dict[int, ReplicaWal] = {}
        self._wal_storage = wal_storage
        self._wal_config = wal_config if wal_config is not None else WalConfig()
        factory = kv_store_factory(
            ring,
            inner_factory,
            schema=schema,
            antientropy=antientropy,
            wal_provider=self._wal_for if recovery != "repair" else None,
        )
        #: Scheduler counters of store incarnations lost to
        #: ``crash(lose_state=True)``, so cluster-wide accounting
        #: (repair bytes, probes) survives rebuilds.
        self._retired_scheduler_stats: dict = {}
        super().__init__(config, factory, MapLattice(), transport=transport)

    def _wal_for(self, replica: int) -> ReplicaWal:
        wal = self._wals.get(replica)
        if wal is None:
            storage = (
                self._wal_storage(replica) if self._wal_storage is not None else None
            )
            wal = ReplicaWal(replica, storage=storage, config=self._wal_config)
            self._wals[replica] = wal
        return wal

    def crash(self, node: int, lose_state: bool = False) -> None:
        if not 0 <= node < self.topology.n:
            raise ValueError(f"no such node {node}")
        if lose_state:
            store = self.nodes[node]
            assert isinstance(store, KVStore)
            for key, value in store.scheduler.stats().items():
                self._retired_scheduler_stats[key] = (
                    self._retired_scheduler_stats.get(key, 0) + value
                )
        super().crash(node, lose_state)

    def _restore_for(self, node: int):
        """WAL recovery: replay the surviving log into the fresh store."""
        wal = self._wals.get(node)
        if wal is None:
            return None
        verify = self.recovery == "wal+repair"

        def restore(store) -> None:
            assert isinstance(store, KVStore)
            # replay_wal enforces the group-commit crash boundary
            # itself (staged-but-uncommitted records are discarded).
            store.replay_wal(verify=verify)

        return restore

    # ------------------------------------------------------------------
    # Smart-client request routing.
    # ------------------------------------------------------------------

    def live_owners(self, key: Hashable) -> Tuple[int, ...]:
        """The key's owner group with crashed replicas filtered out."""
        return tuple(o for o in self.ring.owners(key) if o not in self.down)

    def _coordinator(self, key: Hashable) -> int:
        owners = self.live_owners(key)
        if not owners:
            raise Unavailable(
                f"all owners {self.ring.owners(key)} of key {key!r} are down"
            )
        return owners[0]

    def update(self, key: Hashable, op: str, *args) -> Lattice:
        """Apply a typed write at the first live owner; return the δ."""
        return self.apply_update(
            self._coordinator(key), KVUpdate(key, op, tuple(args))
        )

    def remove(self, key: Hashable) -> Lattice:
        """Remove ``key`` at the first live owner (observed-remove types)."""
        node = self.nodes[self._coordinator(key)]
        assert isinstance(node, KVStore)
        return node.remove(key)

    def value(self, key: Hashable) -> Any:
        """Read the typed value from the first live owner."""
        node = self.nodes[self._coordinator(key)]
        assert isinstance(node, KVStore)
        return node.get(key)

    # ------------------------------------------------------------------
    # Per-shard convergence.
    # ------------------------------------------------------------------

    def shard_states(self, shard: int) -> List[Lattice]:
        """The shard's keyspace as held by each live owner."""
        return [
            self.nodes[owner].shards[shard].state
            for owner in self.ring.shard_owners(shard)
            if owner not in self.down
        ]

    def shard_converged(self, shard: int) -> bool:
        """True when every live owner of ``shard`` agrees on it."""
        states = self.shard_states(shard)
        return all(state == states[0] for state in states[1:])

    def converged(self) -> bool:
        """Per-shard agreement across every replica group (live members)."""
        return all(
            self.shard_converged(shard) for shard in range(self.ring.n_shards)
        )

    def key_converged(self, key: Hashable) -> bool:
        """True when the key's replica group agrees on its value."""
        return self.shard_converged(self.ring.shard_of(key))

    def scheduler_stats(self) -> dict:
        """Cluster-wide sums of every store's scheduler counters.

        Includes the repair-byte accounting (``repair_payload_bytes``,
        ``repair_metadata_bytes``, ``probes``, ``repairs``) that the
        repair-mode comparisons measure, plus the counters of store
        incarnations lost to ``crash(lose_state=True)`` — so ``ticks``
        sums over incarnations, while traffic counters equal what was
        actually observed across the whole run.
        """
        totals: dict = dict(self._retired_scheduler_stats)
        for node in self.nodes:
            assert isinstance(node, KVStore)
            for key, value in node.scheduler.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def wal_stats(self) -> dict:
        """Cluster-wide sums of the per-replica WAL counters.

        Empty under the ``"repair"`` policy (no logs exist).  The log
        objects survive rebuilds, so — unlike the scheduler counters —
        nothing needs retiring at crash time.
        """
        totals: dict = {}
        for wal in self._wals.values():
            for key, value in wal.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def merged_keyspace(self) -> MapLattice:
        """The join of every live replica's keyspace — the global view."""
        merged = MapLattice()
        for index, node in enumerate(self.nodes):
            if index in self.down:
                continue
            assert isinstance(node, KVStore)
            merged = merged.join(node.state)
        return merged
