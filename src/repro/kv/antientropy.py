"""Per-shard anti-entropy scheduling with a send budget and repair.

A replica of the sharded store runs one synchronizer instance per owned
shard.  Left alone, every shard would flush its δ-buffer on every tick;
under heavy multi-key traffic that can exceed what the replica's uplink
should spend per interval.  The scheduler imposes the store's two
operational knobs:

* **send budget** — an upper bound on synchronization bytes planned per
  tick.  Shards are visited round-robin from a rotating cursor; once
  the budget is spent the remaining shards are *deferred*: their
  synchronizers are not asked for messages, so their δ-buffers keep
  accumulating and the next tick ships one larger, better-compressed
  δ-group per neighbour.  That is delta-batching as backpressure — the
  same mechanism the paper exploits by synchronizing once per interval
  rather than per update, extended across a keyspace.

* **periodic repair** — every ``repair_interval`` ticks the next
  ``repair_fanout`` shards (again round-robin) push their full shard
  state to the other owners.  Algorithm 1 clears δ-buffers on send, so
  a δ-group lost to a crashed peer or a severed link is gone; repair
  restores convergence after partitions and crash-recovery the way
  Dynamo-style stores run background anti-entropy next to the fast
  delta path.  Repair is protocol-agnostic: full states join into any
  synchronizer's replica state.

The scheduler is deliberately deterministic — cursors, not randomness —
so simulated runs replay identically for every algorithm under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sync.protocol import Send, Synchronizer


@dataclass(frozen=True)
class AntiEntropyConfig:
    """The store's synchronization-scheduling knobs.

    Attributes:
        budget_bytes: Cap on planned synchronization bytes per tick per
            replica (``None`` = unlimited).  At least one shard is
            always served so progress is guaranteed.  Repair pushes are
            exempt: they are the recovery safety net, and starving them
            under budget pressure would let a reset or partitioned
            replica stay divergent indefinitely.
        repair_interval: Push full shard states every this many ticks
            (0 disables repair; required for partition/crash recovery
            when the inner protocol clears buffers on send).
        repair_fanout: Shards repaired per repair tick.
        batch: Bundle all same-destination shard messages of a tick
            into one wire message (per-message framing is paid once).
    """

    budget_bytes: Optional[int] = None
    repair_interval: int = 0
    repair_fanout: int = 1
    batch: bool = True

    def __post_init__(self) -> None:
        if self.budget_bytes is not None and self.budget_bytes < 1:
            raise ValueError("budget_bytes must be positive (or None)")
        if self.repair_interval < 0:
            raise ValueError("repair_interval must be non-negative")
        if self.repair_fanout < 1:
            raise ValueError("repair_fanout must be at least 1")


class AntiEntropyScheduler:
    """Round-robin shard scheduling under a per-tick byte budget."""

    def __init__(self, config: AntiEntropyConfig, shard_ids: Sequence[int]) -> None:
        self.config = config
        self.shard_ids: Tuple[int, ...] = tuple(sorted(shard_ids))
        self._cursor = 0
        self._repair_cursor = 0
        self.tick = 0
        #: Shard-sync opportunities skipped because the budget ran out.
        self.deferred = 0
        #: Shard syncs actually planned.
        self.synced = 0
        #: Full-state repair pushes planned.
        self.repairs = 0

    def plan(
        self, shards: Mapping[int, Synchronizer]
    ) -> Tuple[List[Tuple[int, Send]], List[int]]:
        """One tick's plan: ``(shard, send)`` pairs plus shards to repair.

        Calling a synchronizer's ``sync_messages`` flushes its buffers,
        so deferred shards are never asked — their deltas survive to
        the next tick.
        """
        self.tick += 1
        planned: List[Tuple[int, Send]] = []
        if not self.shard_ids:
            return planned, []

        order = [
            self.shard_ids[(self._cursor + i) % len(self.shard_ids)]
            for i in range(len(self.shard_ids))
        ]
        budget = self.config.budget_bytes
        spent = 0
        served = 0
        for shard in order:
            if budget is not None and served > 0 and spent >= budget:
                self.deferred += len(order) - served
                break
            sends = shards[shard].sync_messages()
            served += 1
            self.synced += 1
            for send in sends:
                spent += send.message.total_bytes
                planned.append((shard, send))
        self._cursor = (self._cursor + served) % len(self.shard_ids)

        repair_due: List[int] = []
        interval = self.config.repair_interval
        if interval and self.tick % interval == 0:
            for _ in range(min(self.config.repair_fanout, len(self.shard_ids))):
                repair_due.append(
                    self.shard_ids[self._repair_cursor % len(self.shard_ids)]
                )
                self._repair_cursor += 1
            self.repairs += len(repair_due)
        return planned, repair_due

    def stats(self) -> Dict[str, int]:
        """Counters for reports: ticks, syncs, deferrals, repairs."""
        return {
            "ticks": self.tick,
            "synced": self.synced,
            "deferred": self.deferred,
            "repairs": self.repairs,
        }
