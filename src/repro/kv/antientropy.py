"""Per-shard anti-entropy scheduling: budget, backpressure, and repair.

A replica of the sharded store runs one synchronizer instance per owned
shard.  Left alone, every shard would flush its δ-buffer on every tick;
under heavy multi-key traffic that can exceed what the replica's uplink
should spend per interval.  The scheduler imposes the store's
operational knobs:

* **send budget** — an upper bound on synchronization bytes planned per
  tick.  Shards are visited round-robin from a rotating cursor; once
  the budget is spent the remaining shards are *deferred*: their
  synchronizers are not asked for messages, so their δ-buffers keep
  accumulating and the next tick ships one larger, better-compressed
  δ-group per neighbour.  That is delta-batching as backpressure — the
  same mechanism the paper exploits by synchronizing once per interval
  rather than per update, extended across a keyspace.

* **repair** — Algorithm 1 clears δ-buffers on send, so a δ-group lost
  to a crashed peer or a severed link is gone; repair restores
  convergence after partitions and crash-recovery the way Dynamo-style
  stores run background anti-entropy next to the fast delta path.  Two
  modes:

  - ``"blanket"``: every ``repair_interval`` ticks the next
    ``repair_fanout`` shards (round-robin) push their full shard state
    to the other owners — simple, correct, and exactly the redundant
    transmission the paper exists to eliminate;
  - ``"digest"`` (divergence-driven): the scheduler tracks, per
    (shard, peer) pair, how many ticks have passed since that δ-path
    last shipped or absorbed a delta, plus *suspicion* raised when a
    send to the peer was refused (crash / severed link).  A δ-path that
    stays cold for ``repair_interval`` ticks triggers a **digest
    probe** — one root hash over the shard's irreducible-set digest
    (:func:`repro.sync.digest.root_of`), O(hash) to compare — instead
    of a state push.  Matching roots end the exchange; a mismatch
    escalates to a fingerprint-digest diff that ships only the
    inflating join decomposition (the ConflictSync shape: Gomes et
    al., PAPERS.md).
    The store reports arriving repair traffic back through
    :meth:`AntiEntropyScheduler.note_repair_traffic`, so repair-byte
    budgets are observable per replica (and refused sends never count).

The scheduler is deliberately deterministic — cursors, not randomness —
so simulated runs replay identically for every algorithm under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.sync.protocol import Send, Synchronizer

#: Valid values of :attr:`AntiEntropyConfig.repair_mode`.
REPAIR_MODES = ("blanket", "digest")


@dataclass(frozen=True)
class AntiEntropyConfig:
    """The store's synchronization-scheduling knobs.

    Attributes:
        budget_bytes: Cap on planned synchronization bytes per tick per
            replica (``None`` = unlimited).  At least one shard is
            always served so progress is guaranteed.  Repair traffic is
            exempt: it is the recovery safety net, and starving it
            under budget pressure would let a reset or partitioned
            replica stay divergent indefinitely.
        repair_interval: In ``"blanket"`` mode, push full shard states
            every this many ticks; in ``"digest"`` mode, probe a
            (shard, peer) δ-path once it has been cold (no delta
            shipped or absorbed) for this many ticks.  0 disables
            repair; some form of repair is required for partition and
            crash recovery when the inner protocol clears buffers on
            send.
        repair_fanout: Shards repaired (blanket) or probed (digest) per
            tick, round-robin.
        repair_mode: ``"blanket"`` (full-state push on a timer) or
            ``"digest"`` (divergence-driven probes; see module doc).
        batch: Bundle all same-destination shard messages of a tick
            into one wire message (per-message framing is paid once).
        handoff_retry_interval: Ticks a rebalance handoff waits for the
            peer's acknowledgement before retransmitting its current
            phase (offer or segment) — the recovery path when loss or a
            transient fault eats a handoff frame.
    """

    budget_bytes: Optional[int] = None
    repair_interval: int = 0
    repair_fanout: int = 1
    repair_mode: str = "blanket"
    batch: bool = True
    handoff_retry_interval: int = 4

    def __post_init__(self) -> None:
        if self.budget_bytes is not None and self.budget_bytes < 1:
            raise ValueError("budget_bytes must be positive (or None)")
        if self.repair_interval < 0:
            raise ValueError("repair_interval must be non-negative")
        if self.repair_fanout < 1:
            raise ValueError("repair_fanout must be at least 1")
        if self.repair_mode not in REPAIR_MODES:
            raise ValueError(
                f"repair_mode must be one of {REPAIR_MODES}, got {self.repair_mode!r}"
            )
        if self.handoff_retry_interval < 1:
            raise ValueError("handoff_retry_interval must be at least 1")


class AntiEntropyScheduler:
    """Round-robin shard scheduling under a per-tick byte budget.

    Args:
        config: The scheduling knobs.
        shard_ids: The shards this replica owns.
        shard_peers: For each owned shard, the co-owner replicas —
            required for digest-mode repair (coldness is tracked per
            (shard, peer) δ-path); optional otherwise.
        replica: This replica's own index.  When given, *coldness*
            probes use a pair tiebreak — only the lower-id side of a
            replica pair initiates — because the exchange repairs both
            directions, and symmetric divergence would otherwise make
            both sides probe in the same tick and ship every delta
            twice.  Suspicion overrides the tiebreak: a blocked send is
            evidence only its observer holds, and ongoing traffic from
            the peer can keep the other side's coldness clock warm
            forever, so the suspecting replica must probe regardless of
            id order.
        registry: The replica's metrics registry the scheduler counters
            live in (one is created privately when omitted).  A cluster
            passes a registry that *outlives* store rebuilds, so the
            counters of a ``crash(lose_state=True)`` incarnation carry
            over instead of needing retirement bookkeeping.
    """

    def __init__(
        self,
        config: AntiEntropyConfig,
        shard_ids: Sequence[int],
        shard_peers: Optional[Mapping[int, Sequence[int]]] = None,
        *,
        replica: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.replica = replica
        self.registry = registry if registry is not None else MetricsRegistry()
        self.shard_ids: Tuple[int, ...] = tuple(sorted(shard_ids))
        self.shard_peers: Dict[int, Tuple[int, ...]] = {
            shard: tuple(shard_peers.get(shard, ())) if shard_peers else ()
            for shard in self.shard_ids
        }
        #: Reverse index ``peer → shards shared with it``, precomputed
        #: so suspicion marking and rebuild-time probe planning touch
        #: only the peer's own δ-paths.  A partitioned replica takes one
        #: refused send per peer per tick; without the index each
        #: refusal re-scanned every owned shard.
        reverse: Dict[int, List[int]] = {}
        for shard in self.shard_ids:
            for peer in self.shard_peers[shard]:
                reverse.setdefault(peer, []).append(shard)
        self._peer_shards: Dict[int, Tuple[int, ...]] = {
            peer: tuple(shards) for peer, shards in reverse.items()
        }
        self._cursor = 0
        self._repair_cursor = 0
        self.tick = 0
        #: (shard, peer) → tick the δ-path last shipped/absorbed a delta.
        self._last_delta: Dict[Tuple[int, int], int] = {}
        #: (shard, peer) → tick of the last digest probe we initiated.
        self._last_probe: Dict[Tuple[int, int], int] = {}
        #: δ-paths whose peer refused a send (crash / severed link).
        self._suspect: Set[Tuple[int, int]] = set()
        #: Rebalance handoffs this replica is sourcing:
        #: (shard, dst) → {"phase": "offer" | "segment", "sent": tick | None}.
        self._handoffs: Dict[Tuple[int, int], Dict] = {}
        #: Bytes planned by the last :meth:`plan` call (handoff pacing
        #: reads it to honour the same per-tick budget).
        self._spent = 0
        # All counters live in the registry under ``scheduler.*`` —
        # created eagerly so a snapshot (or the cluster's stats adapter)
        # sees every key from tick zero.  The attribute-style names the
        # rest of the codebase reads (``scheduler.repairs``, …) are
        # thin properties over these.
        counter = self.registry.counter
        #: Planning ticks run (plan() calls across store incarnations).
        self._c_ticks = counter("scheduler.ticks")
        #: Shard-sync opportunities skipped because the budget ran out.
        self._c_deferred = counter("scheduler.deferred")
        #: Shard syncs actually planned.
        self._c_synced = counter("scheduler.synced")
        # Repair traffic is counted where it *arrives*: a push or probe
        # refused by a down peer or severed link never crossed the wire
        # and must not inflate the repair-byte comparison.
        #: Repair payloads absorbed (blanket pushes + digest-diff deltas).
        self._c_repairs = counter("scheduler.repairs")
        #: Digest probes received.
        self._c_probes = counter("scheduler.probes")
        #: Repair-path payload bytes that reached this replica.
        self._c_repair_payload = counter("scheduler.repair_payload_bytes")
        #: Repair-path metadata bytes that reached it (roots, digests).
        self._c_repair_metadata = counter("scheduler.repair_metadata_bytes")
        # Handoff accounting.  Traffic counters follow the repair rule —
        # counted where they *arrive* — while start/finish counters are
        # the source's lifecycle view.
        self._c_handoffs_started = counter("scheduler.handoffs_started")
        self._c_handoffs_completed = counter("scheduler.handoffs_completed")
        self._c_handoffs_abandoned = counter("scheduler.handoffs_abandoned")
        self._c_handoff_offers = counter("scheduler.handoff_offers")
        self._c_handoff_segments = counter("scheduler.handoff_segments")
        self._c_handoff_payload = counter("scheduler.handoff_payload_bytes")
        self._c_handoff_metadata = counter("scheduler.handoff_metadata_bytes")
        # Client-pushed read repair (the ``repro.serve`` quorum path).
        # Kept apart from the digest-repair counters so the quorum
        # experiment can report read-repair traffic separately.
        self._c_read_repairs = counter("scheduler.read_repairs")
        self._c_read_repair_payload = counter("scheduler.read_repair_payload_bytes")

    # ------------------------------------------------------------------
    # Counter views (the names the stores, tests, and reports read).
    # ------------------------------------------------------------------

    @property
    def deferred(self) -> int:
        return self._c_deferred.value

    @property
    def synced(self) -> int:
        return self._c_synced.value

    @property
    def repairs(self) -> int:
        return self._c_repairs.value

    @property
    def probes(self) -> int:
        return self._c_probes.value

    @property
    def repair_payload_bytes(self) -> int:
        return self._c_repair_payload.value

    @property
    def repair_metadata_bytes(self) -> int:
        return self._c_repair_metadata.value

    @property
    def handoffs_started(self) -> int:
        return self._c_handoffs_started.value

    @property
    def handoffs_completed(self) -> int:
        return self._c_handoffs_completed.value

    @property
    def handoffs_abandoned(self) -> int:
        return self._c_handoffs_abandoned.value

    @property
    def handoff_offers(self) -> int:
        return self._c_handoff_offers.value

    @property
    def handoff_segments(self) -> int:
        return self._c_handoff_segments.value

    @property
    def handoff_payload_bytes(self) -> int:
        return self._c_handoff_payload.value

    @property
    def handoff_metadata_bytes(self) -> int:
        return self._c_handoff_metadata.value

    @property
    def read_repairs(self) -> int:
        return self._c_read_repairs.value

    @property
    def read_repair_payload_bytes(self) -> int:
        return self._c_read_repair_payload.value

    # ------------------------------------------------------------------
    # Signals from the store: δ-path activity and peer reachability.
    # ------------------------------------------------------------------

    def note_delta_activity(self, shard: int, peer: int) -> None:
        """A delta was shipped to — or absorbed from — ``peer`` for ``shard``."""
        self._last_delta[(shard, peer)] = self.tick
        self._suspect.discard((shard, peer))

    def note_peer_unreachable(self, peer: int) -> None:
        """A send to ``peer`` was refused; suspect every shared δ-path.

        O(shards shared with the peer) via the precomputed reverse
        index — this fires once per peer per tick for as long as a
        partition lasts, so it must not rescan the whole shard map.
        """
        for shard in self._peer_shards.get(peer, ()):
            self._suspect.add((shard, peer))

    def suspect_all_paths(self) -> None:
        """Mark every δ-path suspect (the ``wal+repair`` recovery policy).

        A store rebuilt from its WAL can *believe* its replay but not
        prove the peers agree; suspicion makes the next planning tick
        root-probe every co-owner regardless of the pair tiebreak, so
        any divergence the log could not cover (its torn tail, writes
        absorbed elsewhere during the downtime) surfaces immediately.
        """
        for peer, shards in self._peer_shards.items():
            for shard in shards:
                self._suspect.add((shard, peer))

    def note_repair_traffic(
        self, payload_bytes: int, metadata_bytes: int, *, with_payload: bool = False
    ) -> None:
        """Account repair-path traffic that arrived at this replica."""
        self._c_repair_payload.inc(payload_bytes)
        self._c_repair_metadata.inc(metadata_bytes)
        if with_payload:
            self._c_repairs.inc()

    def note_probe(self, n: int = 1) -> None:
        self._c_probes.inc(n)

    def note_read_repair(self, payload_bytes: int) -> None:
        """Account client-pushed repair state absorbed at this replica."""
        self._c_read_repairs.inc()
        self._c_read_repair_payload.inc(payload_bytes)

    def restore_clock(self, ticks: int) -> None:
        """Re-align the tick counter after a rebuild (crash with state loss).

        A rebuilt replica starts from ``tick == 0``, silently
        desynchronizing its repair cadence from the co-owners that kept
        their clocks; carrying the cluster round in keeps blanket repair
        phases and coldness thresholds aligned across the group.
        """
        self.tick = ticks

    # ------------------------------------------------------------------
    # Membership changes: ring rebalancing.
    # ------------------------------------------------------------------

    def apply_membership(
        self,
        shard_ids: Sequence[int],
        shard_peers: Mapping[int, Sequence[int]],
        *,
        suspect_paths: Sequence[Tuple[int, int]] = (),
    ) -> None:
        """Swap the owned-shard set after a ring rebalance.

        δ-path clocks survive for every (shard, peer) pair that exists
        on both sides of the change; paths that appear — a gained shard,
        or a moved shard's new co-owner — start *warm* (as if a delta
        had just flowed), giving the handoff protocol one full coldness
        interval to ship its segment before digest probes escalate and
        re-ship the same content as repair deltas.  ``suspect_paths``
        overrides warmth for the pairs the store knows diverged — the
        surviving co-owner pairs of a rebuilt shard synchronizer, whose
        pending δ-buffers the rebuild discarded.
        """
        old_paths = {
            (shard, peer)
            for shard, peers in self.shard_peers.items()
            for peer in peers
        }
        self.shard_ids = tuple(sorted(shard_ids))
        self.shard_peers = {
            shard: tuple(shard_peers.get(shard, ())) for shard in self.shard_ids
        }
        reverse: Dict[int, List[int]] = {}
        for shard in self.shard_ids:
            for peer in self.shard_peers[shard]:
                reverse.setdefault(peer, []).append(shard)
        self._peer_shards = {
            peer: tuple(shards) for peer, shards in reverse.items()
        }
        live_paths = {
            (shard, peer)
            for shard, peers in self.shard_peers.items()
            for peer in peers
        }
        self._last_delta = {
            path: tick for path, tick in self._last_delta.items() if path in live_paths
        }
        self._last_probe = {
            path: tick for path, tick in self._last_probe.items() if path in live_paths
        }
        self._suspect = {path for path in self._suspect if path in live_paths}
        for path in live_paths - old_paths:
            self._last_delta[path] = self.tick
        for path in suspect_paths:
            if path in live_paths:
                self._suspect.add(path)
        if self.shard_ids:
            self._cursor %= len(self.shard_ids)
            self._repair_cursor %= len(self.shard_ids)
        else:
            self._cursor = self._repair_cursor = 0

    # ------------------------------------------------------------------
    # Shard handoff scheduling (the source side of a rebalance).
    # ------------------------------------------------------------------

    def enqueue_handoff(self, shard: int, dst: int) -> None:
        """Begin sourcing a shard handoff to ``dst`` (offer goes first)."""
        key = (shard, dst)
        if key not in self._handoffs:
            self._c_handoffs_started.inc()
        self._handoffs[key] = {"phase": "offer", "sent": None}

    def note_handoff_wanted(self, shard: int, dst: int) -> None:
        """The receiver acknowledged the offer and wants the segment."""
        entry = self._handoffs.get((shard, dst))
        if entry is not None:
            entry["phase"] = "segment"
            entry["sent"] = None

    def finish_handoff(self, shard: int, dst: int) -> bool:
        """The receiver acknowledged this handoff complete."""
        if self._handoffs.pop((shard, dst), None) is not None:
            self._c_handoffs_completed.inc()
            return True
        return False

    def abandon_handoff(self, shard: int, dst: int) -> bool:
        """Drop a handoff that transferred nothing.

        Two ways here: the source lost the shard's state (lose-state
        rebuild mid-handoff), or the receiver *declined* because the
        ring moved again and it is no longer the gaining owner.  Kept
        separate from :meth:`finish_handoff` so the completion counter
        only ever means "a receiver confirmed it holds the shard";
        abandonments are the failure signal an operator reads.
        """
        if self._handoffs.pop((shard, dst), None) is not None:
            self._c_handoffs_abandoned.inc()
            return True
        return False

    def pending_handoffs(self, shard: Optional[int] = None) -> int:
        """Handoffs still in flight (for ``shard`` when given)."""
        if shard is None:
            return len(self._handoffs)
        return sum(1 for s, _ in self._handoffs if s == shard)

    def plan_handoffs(self) -> List[Tuple[int, int, str]]:
        """Handoff transmissions due this tick: ``(shard, dst, phase)``.

        Call once per tick, after :meth:`plan`.  Offers are metadata-
        sized and all go out immediately; segments carry shard-sized
        payloads and are paced — at most ``repair_fanout`` per tick,
        throttled to one when :meth:`plan` already spent the tick's
        send budget, so a rebalance rides *within* the same budget that
        backpressures normal synchronization instead of spiking past
        it.  An unacknowledged phase retransmits after
        ``handoff_retry_interval`` ticks (loss / transient faults).
        """
        due: List[Tuple[int, int, str]] = []
        retry = self.config.handoff_retry_interval
        budget = self.config.budget_bytes
        segment_cap = self.config.repair_fanout
        if budget is not None and self._spent >= budget:
            segment_cap = 1
        segments_served = 0
        for (shard, dst), entry in sorted(self._handoffs.items()):
            sent = entry["sent"]
            if sent is not None and self.tick - sent < retry:
                continue
            if entry["phase"] == "segment":
                if segments_served >= segment_cap:
                    continue
                segments_served += 1
            entry["sent"] = self.tick
            due.append((shard, dst, entry["phase"]))
        return due

    def note_handoff_traffic(
        self, payload_bytes: int, metadata_bytes: int, *, kind: str
    ) -> None:
        """Account handoff-path traffic that arrived at this replica."""
        self._c_handoff_payload.inc(payload_bytes)
        self._c_handoff_metadata.inc(metadata_bytes)
        if kind == "kv-handoff-offer":
            self._c_handoff_offers.inc()
        elif kind == "kv-handoff-segment":
            self._c_handoff_segments.inc()

    # ------------------------------------------------------------------
    # The per-tick plan.
    # ------------------------------------------------------------------

    def plan(
        self, shards: Mapping[int, Synchronizer]
    ) -> Tuple[List[Tuple[int, Send]], List[int], List[Tuple[int, Tuple[int, ...]]]]:
        """One tick's plan: planned sends, blanket repairs, digest probes.

        Returns ``(planned, blanket_due, probes_due)``:

        * ``planned`` — ``(shard, send)`` pairs from the inner
          synchronizers, budget- and fairness-limited.  Calling a
          synchronizer's ``sync_messages`` flushes its buffers, so
          deferred shards are never asked — their deltas survive to the
          next tick.
        * ``blanket_due`` — shards that must push full state to every
          co-owner (``repair_mode == "blanket"`` only).
        * ``probes_due`` — ``(shard, peers)`` digest probes for δ-paths
          gone cold or suspect (``repair_mode == "digest"`` only).
        """
        self.tick += 1
        self._c_ticks.inc()
        self._spent = 0
        planned: List[Tuple[int, Send]] = []
        if not self.shard_ids:
            return planned, [], []

        order = [
            self.shard_ids[(self._cursor + i) % len(self.shard_ids)]
            for i in range(len(self.shard_ids))
        ]
        budget = self.config.budget_bytes
        spent = 0
        served = 0
        for shard in order:
            if budget is not None and served > 0 and spent >= budget:
                self._c_deferred.inc(len(order) - served)
                break
            sends = shards[shard].sync_messages()
            served += 1
            self._c_synced.inc()
            for send in sends:
                spent += send.message.total_bytes
                planned.append((shard, send))
        self._cursor = (self._cursor + served) % len(self.shard_ids)
        self._spent = spent

        interval = self.config.repair_interval
        if not interval:
            return planned, [], []
        if self.config.repair_mode == "blanket":
            return planned, self._blanket_due(interval), []
        return planned, [], self._probes_due(interval)

    def _blanket_due(self, interval: int) -> List[int]:
        """Timer-driven: every ``interval`` ticks, the next fanout shards."""
        if self.tick % interval != 0:
            return []
        due: List[int] = []
        for _ in range(min(self.config.repair_fanout, len(self.shard_ids))):
            due.append(self.shard_ids[self._repair_cursor % len(self.shard_ids)])
            self._repair_cursor += 1
        return due

    def _probes_due(self, interval: int) -> List[Tuple[int, Tuple[int, ...]]]:
        """Divergence-driven: probe δ-paths cold or suspect for ≥ interval.

        A probe is itself rate-limited to one per δ-path per interval,
        so an already-synchronized shard costs one root digest per
        interval and nothing more.  Fanout caps probed shards per tick,
        rotating a cursor so every cold shard eventually gets its turn.
        """
        due: List[Tuple[int, Tuple[int, ...]]] = []
        n = len(self.shard_ids)
        scanned = 0
        picked = 0
        while scanned < n and picked < self.config.repair_fanout:
            shard = self.shard_ids[(self._repair_cursor + scanned) % n]
            scanned += 1
            cold_peers = []
            for peer in self.shard_peers.get(shard, ()):
                path = (shard, peer)
                suspect = path in self._suspect
                if (
                    not suspect
                    and self.replica is not None
                    and peer < self.replica
                ):
                    continue  # cold probes: the lower-id side initiates
                if self.tick - self._last_probe.get(path, -interval) < interval:
                    continue  # probed recently; give the exchange time
                cold = self.tick - self._last_delta.get(path, 0) >= interval
                if cold or suspect:
                    cold_peers.append(peer)
                    self._last_probe[path] = self.tick
                    self._suspect.discard(path)
            if cold_peers:
                due.append((shard, tuple(cold_peers)))
                picked += 1
        self._repair_cursor = (self._repair_cursor + scanned) % n
        return due

    def stats(self) -> Dict[str, int]:
        """Counters for reports: ticks, syncs, deferrals, repair traffic.

        Reads the registry counters, so on a shared (cluster-owned)
        registry the values span every store incarnation of the
        replica.  ``ticks`` counts planning ticks actually run — unlike
        :attr:`tick`, the protocol clock, which a rebuild re-aligns to
        the cluster round via :meth:`restore_clock`.
        """
        return {
            "ticks": self._c_ticks.value,
            "synced": self.synced,
            "deferred": self.deferred,
            "repairs": self.repairs,
            "probes": self.probes,
            "repair_payload_bytes": self.repair_payload_bytes,
            "repair_metadata_bytes": self.repair_metadata_bytes,
            "handoffs_started": self.handoffs_started,
            "handoffs_completed": self.handoffs_completed,
            "handoffs_abandoned": self.handoffs_abandoned,
            "handoff_offers": self.handoff_offers,
            "handoff_segments": self.handoff_segments,
            "handoff_payload_bytes": self.handoff_payload_bytes,
            "handoff_metadata_bytes": self.handoff_metadata_bytes,
        }
