"""The per-replica engine of the sharded CRDT key-value store.

:class:`KVStore` is one replica's store process.  It owns a slice of
the keyspace — one :class:`~repro.lattice.map_lattice.MapLattice` of
``key → CRDT state`` per shard the ring places here — and runs one
inner synchronizer per shard, built from any
:class:`~repro.sync.protocol.Synchronizer` factory: state-based,
delta-based with BP/RR, Scuttlebutt, keyed, or Merkle-digest.  Each
inner instance's neighbourhood is the shard's *replica group*, so
anti-entropy traffic flows only between co-owners, not the whole
cluster.

Outwardly the store is itself a :class:`Synchronizer`, which is what
lets one :class:`~repro.net.runtime.ReplicaRuntime` host it unmodified
over any :class:`~repro.net.transport.Transport` — the deterministic
simulator or real asyncio TCP sockets:

* ``local_update`` consumes a :class:`KVUpdate` — a typed operation on
  one key — resolves the key's type through the :class:`~repro.kv.
  types.Schema`, computes the optimal δ of the mutation against the
  key's current value, and hands the one-key keyspace delta to the
  owning shard's synchronizer;
* ``sync_messages`` asks the :class:`~repro.kv.antientropy.
  AntiEntropyScheduler` which shards to serve this tick (send budget,
  round-robin fairness, repair scheduling) and packages the result onto
  the wire, optionally batching all same-destination shard messages
  into one framed message;
* ``handle_message`` demultiplexes arriving wire messages back to the
  shard instances and re-packages any immediate replies.

Repair rides alongside the inner protocols on three wire kinds:

* ``kv-digest`` — a divergence probe: one root hash over the shard's
  irreducible-set digest (:func:`repro.sync.digest.root_of`,
  ``ROOT_BYTES``).  A receiver whose root matches stays silent; the
  exchange cost O(hash).
* ``kv-diff`` — the mismatch escalation: the responder's irreducible-set
  digest (8-byte fingerprints, :mod:`repro.sync.digest`), from which
  the initiator computes exactly the decomposition the responder lacks.
* ``kv-repair`` — repair content: ``(delta, echo-digest | None)``.  The
  initiator ships the missing delta plus its own digest so the
  responder can answer with the reverse delta; blanket-mode repair uses
  the same kind with the full shard state and no echo.  Absorption goes
  through :meth:`repro.sync.protocol.Synchronizer.absorb_state`, so
  every inner protocol's bookkeeping (δ-buffers, Scuttlebutt versions)
  stays truthful about repaired content.

Ring rebalancing adds three more kinds (:data:`HANDOFF_KINDS`):
``kv-handoff-offer`` announces a moved shard with a root hash,
``kv-handoff-segment`` ships the shard as its compacted WAL records
(the canonical encoded join decomposition), and ``kv-handoff-ack``
completes the exchange — at which point a source that no longer owns
the shard fences and truncates its log.  :meth:`KVStore.apply_ring` is
the membership-swap entry point the cluster drives.

Wire framing adds one shard tag per bundled shard message; payload and
metadata accounting of the inner protocols is preserved unchanged, so
cross-algorithm byte comparisons measured through the store remain as
meaningful as the paper's single-object ones.

When constructed with a :class:`~repro.wal.ReplicaWal`, the store is
also the WAL's write path: every delta that inflates a shard — a local
typed write, the novelty absorbed from a peer's sync message, a repair
absorption — is appended to that shard's log and group-committed once
per tick, and :meth:`KVStore.replay_wal` is the recovery path that
rebuilds a reset replica from its own disk before digest repair covers
the post-crash remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.codec import decode, encode
from repro.kv.antientropy import AntiEntropyConfig, AntiEntropyScheduler
from repro.kv.ring import HashRing
from repro.kv.types import Schema, TypeSpec
from repro.lattice.base import Lattice
from repro.lattice.map_lattice import MapLattice
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.sync.digest import (
    FINGERPRINT_BYTES,
    ROOT_BYTES,
    IncrementalDigest,
    delta_against_digest,
    digest_and_missing,
)
from repro.sync.protocol import Message, Send, Synchronizer
from repro.wal import ReplicaWal

#: Wire kinds of the shard-handoff protocol (ring rebalancing).  The
#: exchange per (shard, gaining replica) pair, ``S`` the source (an old
#: owner) and ``G`` the gaining owner:
#:
#:   1. S → G  kv-handoff-offer    (root(S), size hint)   — O(hash)
#:   2. G → S  kv-handoff-ack      (complete?, root)      — roots match ⇒ done
#:   3. S → G  kv-handoff-segment  (compacted WAL records) — the shard
#:   4. G → S  kv-handoff-ack      (complete=True, root(G))
#:
#: On the final ack the source — if it no longer owns the shard —
#: fences and truncates its shard log, so a later re-add cannot replay
#: stale ownership.
HANDOFF_KINDS = ("kv-handoff-offer", "kv-handoff-segment", "kv-handoff-ack")


class KVRoutingError(LookupError):
    """The key is not owned by this replica (ask the ring for owners)."""


def _keyspace_novelty(before: MapLattice, after: MapLattice) -> MapLattice:
    """The optimal delta ``∆(after, before)`` of one shard keyspace.

    ``MapLattice.join`` copies its entry dict but *reuses* the value
    objects of untouched keys, so a post-delivery state shares those
    objects with the pre-delivery one.  Exploiting that, the scan costs
    one identity check per key plus per-value ``∆`` work only where the
    message actually landed — instead of decomposing the whole shard
    state per delivered message, which would put O(shard) work on the
    hot path of every WAL-enabled run.
    """
    if after is before:
        return after.bottom_like()
    previous = before.entries
    changed: Dict = {}
    for key, value in after.entries.items():
        mine = previous.get(key)
        if mine is value:
            continue
        if mine is None:
            changed[key] = value
            continue
        delta = value.delta(mine)
        if not delta.is_bottom:
            changed[key] = delta
    if not changed:
        return after.bottom_like()
    return MapLattice(changed)


@dataclass(frozen=True)
class KVUpdate:
    """One typed write: ``op(*args)`` on ``key``.

    The workload layer pre-draws these and the cluster harness routes
    them to an owner replica, mirroring a smart client that knows the
    ring.
    """

    key: Hashable
    op: str
    args: Tuple = ()


class KVStore(Synchronizer):
    """One replica of the sharded, replicated key-value store."""

    name = "kv-store"

    def __init__(
        self,
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
        *,
        ring: HashRing,
        inner_factory,
        schema: Optional[Schema] = None,
        antientropy: Optional[AntiEntropyConfig] = None,
        wal: Optional[ReplicaWal] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not isinstance(bottom, MapLattice) or not bottom.is_bottom:
            raise TypeError("a KVStore keyspace starts from an empty MapLattice")
        # Synchronizer.__init__ would bind ``self.state``; the store's
        # state is the join of its shard states, exposed as a property.
        self.replica = replica
        self.neighbors = tuple(neighbors)
        self.bottom = bottom
        self.n_nodes = n_nodes
        self.size_model = size_model

        self.ring = ring
        self.inner_factory = inner_factory
        #: The durable per-shard delta log, shared across incarnations
        #: of this replica (``None`` disables write-ahead logging).
        self.wal = wal
        #: δ-paths restored by :meth:`replay_wal`, consumed by
        #: :meth:`restore_clock` once the cluster round is known.
        self._replayed_paths: Tuple[Tuple[int, int], ...] = ()
        #: Shards this replica stopped owning but still sources a
        #: pending handoff from: shard id → the retired synchronizer.
        #: Fenced and dropped once the gaining owner acknowledges.
        self._fencing: Dict[int, Synchronizer] = {}
        #: Wire messages that arrived for a shard the current ring does
        #: not place here — in-flight traffic outrun by a rebalance.
        self.stale_shard_messages = 0
        #: Per-shard incremental digest/root caches.  Identity-based
        #: refresh makes them self-correcting, so they survive ring
        #: swaps and synchronizer replacement without invalidation
        #: hooks; :meth:`apply_ring` merely prunes shards that left.
        self._digests: Dict[int, IncrementalDigest] = {}
        self.schema = schema if schema is not None else Schema()
        #: This replica's metrics registry — the single observability
        #: namespace the runtime's ``metrics`` view exposes.  A cluster
        #: passes one that outlives store rebuilds; standalone stores
        #: get a private one.
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Structured trace destination (``None`` = tracing off).
        self.tracer = tracer
        config = antientropy if antientropy is not None else AntiEntropyConfig()
        owned = ring.shards_owned_by(replica)
        #: shard id → this replica's synchronizer for that shard.
        self.shards: Dict[int, Synchronizer] = {}
        shard_peers: Dict[int, Tuple[int, ...]] = {}
        for shard in owned:
            peers = self._shard_peers_checked(shard, ring)
            self.shards[shard] = self._make_inner(peers)
            shard_peers[shard] = peers
        self.scheduler = AntiEntropyScheduler(
            config, owned, shard_peers, replica=replica, registry=self.registry
        )
        if self.wal is not None:
            # Read-through: wal counters surface in registry snapshots
            # under ``wal.*`` without being double-kept (re-registering
            # after a rebuild just re-binds the same surviving log).
            self.registry.register_view("wal", self.wal.stats)

    def _shard_peers_checked(self, shard: int, ring: HashRing) -> Tuple[int, ...]:
        """The shard's co-owners, verified reachable over the overlay."""
        group = ring.shard_owners(shard)
        reachable = set(self.neighbors) | {self.replica}
        missing = [peer for peer in group if peer not in reachable]
        if missing:
            raise ValueError(
                f"replica {self.replica} cannot reach co-owners {missing} of "
                f"shard {shard}; the cluster topology must connect every "
                "replica group"
            )
        return tuple(peer for peer in group if peer != self.replica)

    def _make_inner(self, peers: Sequence[int]) -> Synchronizer:
        """One shard's inner synchronizer over its replica group."""
        return self.inner_factory(
            replica=self.replica,
            neighbors=peers,
            bottom=self.bottom,
            n_nodes=self.n_nodes,
            size_model=self.size_model,
        )

    def _shard_digest(self, shard: int) -> IncrementalDigest:
        """The shard's incremental digest cache (created on first use)."""
        cache = self._digests.get(shard)
        if cache is None:
            cache = IncrementalDigest()
            self._digests[shard] = cache
        return cache

    def shard_root(self, shard: int) -> Optional[bytes]:
        """The root hash of an owned shard's state, incrementally kept.

        Equal to ``root_of(digest_of(state))`` by construction; ``None``
        when this replica does not hold the shard.  This is the probe
        the repair plane and the convergence-lag sampler compare — the
        cache makes asking every round O(1) for quiescent shards.
        """
        inner = self.shards.get(shard)
        if inner is None:
            return None
        return self._shard_digest(shard).root(inner.state)

    # ------------------------------------------------------------------
    # Typed client API.
    # ------------------------------------------------------------------

    def owns(self, key: Hashable) -> bool:
        """True when this replica holds a copy of ``key``'s shard."""
        return self.ring.shard_of(key) in self.shards

    def update(self, key: Hashable, op: str, *args) -> Lattice:
        """Apply a typed write locally; return the keyspace delta."""
        return self.local_update(KVUpdate(key, op, tuple(args)))

    def remove(self, key: Hashable) -> Lattice:
        """Remove ``key``'s observed content (observed-remove types only)."""
        shard, shard_sync = self._route(key)
        spec = self.schema.spec_for(key)

        def mutator(keyspace: MapLattice) -> MapLattice:
            current = keyspace.get(key)
            if current is None:
                return keyspace.bottom_like()
            delta = spec.remove_delta(self.replica, current)
            if delta.is_bottom:
                return keyspace.bottom_like()
            return MapLattice({key: delta})

        delta = shard_sync.local_update(mutator)
        self._wal_append(shard, delta)
        return delta

    def get(self, key: Hashable) -> Any:
        """The typed query-side value of ``key`` at this replica."""
        spec = self.schema.spec_for(key)
        current = self._shard_for(key).state.get(key)
        return spec.read(current if current is not None else spec.bottom())

    def value_lattice(self, key: Hashable) -> Optional[Lattice]:
        """The raw lattice value of ``key`` (``None`` when unwritten)."""
        return self._shard_for(key).state.get(key)

    def keys(self) -> Iterator[Hashable]:
        """Every key with a non-bottom value on this replica."""
        for shard in sorted(self.shards):
            yield from self.shards[shard].state.keys()

    def absorb_client_state(
        self, fragment: MapLattice, *, payload_bytes: Optional[int] = None
    ) -> Lattice:
        """Absorb a client-pushed keyspace fragment (quorum write / read repair).

        The serving layer's second write path: a :class:`~repro.serve.
        client.KVClient` replicating a write to ``w`` owners — or
        pushing the join of divergent read replies back — ships the
        *delta* it already holds instead of re-applying the typed
        operation (which would double-count non-idempotent ops like
        counter increments; the lattice join is idempotent, the op is
        not).  Keys are grouped per owning shard and flow through
        ``absorb_state`` so every inner protocol's bookkeeping stays
        truthful, then into the WAL like any other absorbed novelty.

        Returns the join of what the fragment actually taught this
        replica (bottom when everything was already known).  Raises
        :class:`KVRoutingError` when any key lands on an unowned shard.
        """
        by_shard: Dict[int, Dict[Hashable, Lattice]] = {}
        for key, value in fragment.entries.items():
            shard, _ = self._route(key)
            by_shard.setdefault(shard, {})[key] = value
        if payload_bytes is None:
            _, payload_bytes = self._payload_sizes(fragment)
        self.scheduler.note_read_repair(payload_bytes)
        absorbed_all = fragment.bottom_like()
        for shard in sorted(by_shard):
            inner = self.shards[shard]
            piece = MapLattice(by_shard[shard])
            absorbed = inner.absorb_state(piece, None)
            # Drain, never send: the client pushes the same fragment to
            # the other owners itself; anti-entropy covers stragglers.
            inner.sync_messages()
            if not absorbed.is_bottom:
                self._wal_append(shard, absorbed)
                absorbed_all = absorbed_all.join(absorbed)
            if self.tracer is not None:
                units, piece_bytes = self._payload_sizes(piece)
                self.tracer.emit(
                    "read-repair",
                    replica=self.replica,
                    shard=shard,
                    payload_bytes=piece_bytes,
                    payload_units=units,
                    extra={
                        "keys": len(piece.entries),
                        "absorbed": not absorbed.is_bottom,
                    },
                )
        return absorbed_all

    def _route(self, key: Hashable) -> Tuple[int, Synchronizer]:
        """Resolve a key to its shard id and synchronizer in one hash."""
        shard = self.ring.shard_of(key)
        sync = self.shards.get(shard)
        if sync is None:
            raise KVRoutingError(
                f"replica {self.replica} does not own key {key!r} "
                f"(shard {shard}, owners {self.ring.shard_owners(shard)})"
            )
        return shard, sync

    def _shard_for(self, key: Hashable) -> Synchronizer:
        return self._route(key)[1]

    # ------------------------------------------------------------------
    # Synchronizer protocol: the store on the simulated cluster.
    # ------------------------------------------------------------------

    @property
    def state(self) -> MapLattice:
        """This replica's merged keyspace view (all owned shards)."""
        merged = self.bottom
        for shard in sorted(self.shards):
            merged = merged.join(self.shards[shard].state)
        return merged

    def local_update(self, delta_mutator) -> Lattice:
        """Apply one :class:`KVUpdate` through the owning shard."""
        if not isinstance(delta_mutator, KVUpdate):
            raise TypeError(
                "a KVStore applies KVUpdate operations, not raw mutators; "
                "use store.update(key, op, *args)"
            )
        op = delta_mutator
        shard, shard_sync = self._route(op.key)
        spec = self.schema.spec_for(op.key)
        replica = self.replica

        def mutator(keyspace: MapLattice) -> MapLattice:
            delta = spec.apply(replica, keyspace.get(op.key), op.op, *op.args)
            if delta.is_bottom:
                return keyspace.bottom_like()
            return MapLattice({op.key: delta})

        delta = shard_sync.local_update(mutator)
        self._wal_append(shard, delta)
        return delta

    def sync_messages(self) -> List[Send]:
        if self.wal is not None:
            # Group commit: every delta staged since the previous tick —
            # local writes, absorbed sync novelty, repair absorptions —
            # becomes durable in one batch per shard log.  A crash
            # between ticks loses only the records staged after this
            # point, which is the WAL's documented durability boundary.
            self.wal.commit()
        planned, blanket_due, probes_due = self.scheduler.plan(self.shards)
        wire: List[Tuple[int, int, Message]] = []
        for shard, send in planned:
            if send.message.payload_bytes:
                self.scheduler.note_delta_activity(shard, send.dst)
            wire.append((send.dst, shard, send.message))
        for shard in blanket_due:
            inner = self.shards[shard]
            if inner.state.is_bottom:
                continue
            units, payload_bytes = self._payload_sizes(inner.state)
            repair = Message(
                kind="kv-repair",
                payload=(inner.state, None),
                payload_units=units,
                payload_bytes=payload_bytes,
                metadata_bytes=0,
            )
            for dst in inner.neighbors:
                wire.append((dst, shard, repair))
        for shard, peers in probes_due:
            inner = self.shards[shard]
            root = self._shard_digest(shard).root(inner.state)
            probe = Message(
                kind="kv-digest",
                payload=root,
                payload_units=0,
                payload_bytes=0,
                metadata_bytes=ROOT_BYTES,
                metadata_units=1,
            )
            for dst in peers:
                wire.append((dst, shard, probe))
        for shard, dst, phase in self.scheduler.plan_handoffs():
            inner = self.shards.get(shard)
            if inner is None:
                inner = self._fencing.get(shard)
            if inner is None:
                # The shard's state is gone (e.g. a lose-state rebuild
                # mid-handoff); abandon — the gaining owner's coldness
                # probes will repair it from the surviving co-owners.
                self.scheduler.abandon_handoff(shard, dst)
                self._maybe_finalize_fence(shard)
                continue
            if phase == "offer":
                wire.append((dst, shard, self._handoff_offer(shard, inner)))
            else:
                wire.append((dst, shard, self._handoff_segment_message(shard, inner)))
        return self._package(wire)

    def handle_message(self, src: int, message: Message) -> List[Send]:
        if message.kind == "kv-batch":
            entries = message.payload
        elif message.kind == "kv-shard":
            entries = (message.payload,)
        else:
            raise ValueError(f"unexpected wire message kind {message.kind!r}")
        wire: List[Tuple[int, int, Message]] = []
        for shard, inner_message in entries:
            if inner_message.kind in HANDOFF_KINDS:
                reply = self._handle_handoff(src, shard, inner_message)
                if reply is not None:
                    wire.append((src, shard, reply))
                continue
            inner = self.shards.get(shard)
            if inner is None:
                if self.replica in self.ring.shard_owners(shard):
                    raise KVRoutingError(
                        f"replica {self.replica} received traffic for unowned "
                        f"shard {shard}"
                    )
                # In-flight traffic outrun by a rebalance: the sender
                # addressed an owner group this replica has left.
                self.stale_shard_messages += 1
                continue
            if inner_message.kind in ("kv-repair", "kv-digest", "kv-diff"):
                reply = self._handle_repair(src, shard, inner, inner_message)
                if reply is not None:
                    wire.append((src, shard, reply))
                continue
            if inner_message.payload_bytes:
                self.scheduler.note_delta_activity(shard, src)
            before = inner.state if self.wal is not None else None
            for reply in inner.handle_message(src, inner_message):
                if reply.message.payload_bytes:
                    self.scheduler.note_delta_activity(shard, reply.dst)
                wire.append((reply.dst, shard, reply.message))
            if before is not None:
                # What this message actually taught the shard, as an
                # optimal delta against the pre-delivery state.  Logging
                # the inflation (instead of the raw payload) keeps the
                # WAL redundancy-free regardless of the inner protocol's
                # own redundancy behaviour.
                self._wal_append(shard, _keyspace_novelty(before, inner.state))
        return self._package(wire)

    # ------------------------------------------------------------------
    # The repair path: blanket absorption and the digest exchange.
    #
    # Digest-mode repair is a two-round-trip exchange per divergent
    # (shard, peer) δ-path; A is the probing replica, B the peer:
    #
    #   1. A → B  kv-digest  root(A)            — O(hash); match ⇒ done
    #   2. B → A  kv-diff    digest(B)          — fingerprints only
    #   3. A → B  kv-repair  (Δ_B, digest(A))   — what B misses, + echo
    #   4. B → A  kv-repair  (Δ_A, None)        — what A misses
    #
    # Both deltas are inflating join decompositions computed against the
    # other side's digest; no message ever carries redundant state.
    #
    # Repair traffic is accounted by its *receiver*: a message that was
    # refused in transit never reaches a handler and never counts, so
    # the repair-byte comparison reflects what actually crossed the
    # wire.
    # ------------------------------------------------------------------

    def _handle_repair(
        self, src: int, shard: int, inner: Synchronizer, message: Message
    ) -> Optional[Message]:
        if message.kind == "kv-repair":
            delta, echo = message.payload
            # "Did this repair ship content?" is judged on the lattice,
            # not on payload_bytes: over TCP a bottom delta still
            # measures a couple of encoded bytes, and counting it as a
            # repair would make the sim/tcp repair comparison diverge.
            self.scheduler.note_repair_traffic(
                message.payload_bytes,
                message.metadata_bytes,
                with_payload=not delta.is_bottom,
            )
            absorbed = inner.absorb_state(delta, src)
            if self.tracer is not None:
                self.tracer.emit(
                    "repair-absorb",
                    replica=self.replica,
                    shard=shard,
                    peer=src,
                    payload_bytes=message.payload_bytes,
                    metadata_bytes=message.metadata_bytes,
                    payload_units=message.payload_units,
                    extra={
                        "absorbed": not absorbed.is_bottom,
                        "echo": echo is not None,
                    },
                )
            if not absorbed.is_bottom:
                self.scheduler.note_delta_activity(shard, src)
                self._wal_append(shard, absorbed)
            if echo is None:
                return None
            back = delta_against_digest(inner.state, echo)
            if back.is_bottom:
                return None
            return self._repair_message(shard, src, back, echo=None)
        if message.kind == "kv-digest":
            self.scheduler.note_probe()
            self.scheduler.note_repair_traffic(0, message.metadata_bytes)
            cache = self._shard_digest(shard)
            match = cache.root(inner.state) == message.payload
            if self.tracer is not None:
                self.tracer.emit(
                    "repair-probe",
                    replica=self.replica,
                    shard=shard,
                    peer=src,
                    metadata_bytes=message.metadata_bytes,
                    extra={"match": match},
                )
            if match:
                # In sync with the prober: refresh the δ-path clock so
                # we do not immediately counter-probe a healthy pair.
                self.scheduler.note_delta_activity(shard, src)
                return None
            digest = cache.digest(inner.state)
            return Message(
                kind="kv-diff",
                payload=digest,
                payload_units=0,
                payload_bytes=0,
                metadata_bytes=len(digest) * FINGERPRINT_BYTES,
                metadata_units=len(digest),
            )
        # kv-diff: the peer diverges; ship what it misses plus our own
        # digest so it can answer with the reverse delta.  One
        # decomposition pass computes both.
        self.scheduler.note_repair_traffic(0, message.metadata_bytes)
        if self.tracer is not None:
            self.tracer.emit(
                "repair-diff",
                replica=self.replica,
                shard=shard,
                peer=src,
                metadata_bytes=message.metadata_bytes,
                metadata_units=message.metadata_units,
            )
        echo, delta = digest_and_missing(inner.state, message.payload)
        return self._repair_message(shard, src, delta, echo=echo)

    def _repair_message(
        self, shard: int, dst: int, delta: Lattice, echo
    ) -> Message:
        units, payload_bytes = self._payload_sizes(delta)
        metadata = len(echo) * FINGERPRINT_BYTES if echo is not None else 0
        if payload_bytes:
            self.scheduler.note_delta_activity(shard, dst)
        return Message(
            kind="kv-repair",
            payload=(delta, echo),
            payload_units=units,
            payload_bytes=payload_bytes,
            metadata_bytes=metadata,
            metadata_units=len(echo) if echo is not None else 0,
        )

    # ------------------------------------------------------------------
    # Ring rebalancing: membership swap and the shard-handoff protocol.
    # ------------------------------------------------------------------

    def apply_ring(
        self, ring: HashRing, *, retain=frozenset(), fence: bool = True
    ) -> None:
        """Swap to a new ring mid-run, reshaping the owned-shard set.

        Three shard transitions, all while traffic keeps flowing:

        * **gained** — a fresh (empty) inner synchronizer over the new
          replica group; content arrives through the handoff protocol
          (or, failing that, through digest repair).  A fenced WAL log
          from a previous ownership is reopened — it was truncated at
          fence time, so nothing stale can replay.
        * **lost** — the shard leaves :attr:`shards`.  A shard named in
          ``retain`` sticks around in the fencing set because this
          replica is the designated handoff source; everything else is
          fenced immediately (log truncated, state dropped).  With
          ``fence=False`` — a *crashed* replica being reshaped by the
          cluster — logs are left untouched instead: the down replica
          may hold the only durable copy of a shard no live owner can
          source, and truncating it here would turn a membership change
          into data loss.  CRDT join makes the preserved content safe:
          if the replica later regains the shard, old records join
          below the handed-off state instead of resurrecting it.
        * **kept with a changed group** — the inner synchronizer is
          rebuilt over the new peer set (per-neighbour protocol state —
          sequence numbers, ack maps — is peer-shaped and cannot be
          mutated in place), seeded through ``absorb_state`` and
          drained: the content is restoration, not news.  The paths to
          *surviving* co-owners are marked suspect, because the rebuild
          discarded δ-buffers that may have held unshipped novelty;
          paths to new co-owners start warm so the handoff gets one
          coldness interval to land before probes re-ship the shard.
        """
        old_owned = set(self.shards)
        old_peers = {
            shard: tuple(inner.neighbors) for shard, inner in self.shards.items()
        }
        self.ring = ring
        new_owned = set(ring.shards_owned_by(self.replica))
        suspect: List[Tuple[int, int]] = []
        for shard in sorted(new_owned - old_owned):
            peers = self._shard_peers_checked(shard, ring)
            retired = self._fencing.pop(shard, None)
            if retired is not None:
                # Regained before the old handoff finished: keep the
                # retired instance's content instead of starting empty.
                fresh = self._make_inner(peers)
                fresh.absorb_state(retired.state, None)
                fresh.sync_messages()  # drain: restoration, not news
                self.shards[shard] = fresh
            else:
                self.shards[shard] = self._make_inner(peers)
            if self.wal is not None:
                self.wal.unfence(shard)
        for shard in sorted(old_owned - new_owned):
            inner = self.shards.pop(shard)
            if shard in retain:
                self._fencing[shard] = inner
            elif fence:
                self._fence_now(shard)
        for shard in sorted(new_owned & old_owned):
            peers = self._shard_peers_checked(shard, ring)
            if set(peers) == set(old_peers[shard]):
                continue
            old_inner = self.shards[shard]
            fresh = self._make_inner(peers)
            fresh.absorb_state(old_inner.state, None)
            fresh.sync_messages()  # drain: restoration, not news
            self.shards[shard] = fresh
            survivors = set(peers) & set(old_peers[shard])
            suspect.extend((shard, peer) for peer in survivors)
        self.scheduler.apply_membership(
            sorted(self.shards),
            {
                shard: tuple(inner.neighbors)
                for shard, inner in self.shards.items()
            },
            suspect_paths=suspect,
        )
        # Digest caches are identity-refreshed, so correctness needs no
        # invalidation here — only drop the ones whose shard left, so
        # they stop pinning a departed shard's state.
        self._digests = {
            shard: cache
            for shard, cache in self._digests.items()
            if shard in self.shards or shard in self._fencing
        }

    def begin_handoff(self, shard: int, dst: int) -> None:
        """Start sourcing ``shard`` to its gaining owner ``dst``."""
        self.scheduler.enqueue_handoff(shard, dst)

    def _handoff_offer(self, shard: int, inner: Synchronizer) -> Message:
        """Phase 1: announce the handoff with the source's root hash."""
        root = self._shard_digest(shard).root(inner.state)
        return Message(
            kind="kv-handoff-offer",
            payload=(root, inner.state.size_bytes(self.size_model)),
            payload_units=0,
            payload_bytes=0,
            metadata_bytes=ROOT_BYTES + self.size_model.int_bytes,
            metadata_units=1,
        )

    def _handoff_segment_records(
        self, shard: int, inner: Synchronizer
    ) -> List[bytes]:
        """The segment body: the shard's compacted log, or its state.

        With a WAL the segment *is* the log — staged records are
        group-committed first so the export covers this tick's writes,
        then the log compacts to the single record of its join.  A
        store without a log (the ``"repair"`` recovery policy) ships
        the encoded join decomposition of the live state: the same
        canonical bytes the log would have compacted to.
        """
        if self.wal is not None:
            records = self.wal.export_segment(shard)
            if records:
                return records
        return [encode(inner.state)]

    def _handoff_segment_message(self, shard: int, inner: Synchronizer) -> Message:
        records = tuple(self._handoff_segment_records(shard, inner))
        tag = self.size_model.int_bytes
        return Message(
            kind="kv-handoff-segment",
            payload=records,
            payload_units=inner.state.size_units(),
            payload_bytes=sum(len(body) for body in records),
            metadata_bytes=tag * (1 + len(records)),
            metadata_units=len(records),
        )

    def _handoff_ack(self, complete: bool, root) -> Message:
        return Message(
            kind="kv-handoff-ack",
            payload=(complete, root),
            payload_units=0,
            payload_bytes=0,
            metadata_bytes=2 + (ROOT_BYTES if root is not None else 0),
            metadata_units=1,
        )

    def _handle_handoff(
        self, src: int, shard: int, message: Message
    ) -> Optional[Message]:
        if message.kind == "kv-handoff-ack":
            complete, root = message.payload
            self.scheduler.note_handoff_traffic(
                0, message.metadata_bytes, kind=message.kind
            )
            if self.tracer is not None:
                self.tracer.emit(
                    "handoff-ack",
                    replica=self.replica,
                    shard=shard,
                    peer=src,
                    metadata_bytes=message.metadata_bytes,
                    extra={"complete": complete, "rooted": root is not None},
                )
            if complete:
                # Fence only on an ack that carries the receiver's root
                # — proof a replica now durably holds the content.  A
                # rootless completion is a *declination* (the ring moved
                # again and the peer is no longer the gaining owner):
                # this replica may still hold the only copy, so the
                # retained shard and its log stay until a later
                # rebalance re-sources or regains the shard — and the
                # declination counts as an abandonment, not a receiver-
                # confirmed completion.
                if root is not None:
                    self.scheduler.finish_handoff(shard, src)
                    self._maybe_finalize_fence(shard)
                else:
                    self.scheduler.abandon_handoff(shard, src)
            else:
                self.scheduler.note_handoff_wanted(shard, src)
            return None
        inner = self.shards.get(shard)
        if message.kind == "kv-handoff-offer":
            root, _hint = message.payload
            self.scheduler.note_handoff_traffic(
                0, message.metadata_bytes, kind=message.kind
            )
            if self.tracer is not None:
                self.tracer.emit(
                    "handoff-offer",
                    replica=self.replica,
                    shard=shard,
                    peer=src,
                    metadata_bytes=message.metadata_bytes,
                    extra={"gaining": inner is not None},
                )
            if inner is None:
                # The ring moved again and this replica is no longer
                # the gaining owner; complete so the source can fence.
                self.stale_shard_messages += 1
                return self._handoff_ack(True, None)
            mine = self._shard_digest(shard).root(inner.state)
            if mine == root:
                # Already holding the offered content (a retried offer,
                # or repair beat the handoff): skip the segment bytes.
                self.scheduler.note_delta_activity(shard, src)
                return self._handoff_ack(True, mine)
            return self._handoff_ack(False, None)
        # kv-handoff-segment: replay the shipped log records.
        self.scheduler.note_handoff_traffic(
            message.payload_bytes, message.metadata_bytes, kind=message.kind
        )
        if self.tracer is not None:
            self.tracer.emit(
                "handoff-segment",
                replica=self.replica,
                shard=shard,
                peer=src,
                payload_bytes=message.payload_bytes,
                metadata_bytes=message.metadata_bytes,
                payload_units=message.payload_units,
                extra={"records": len(message.payload), "gaining": inner is not None},
            )
        if inner is None:
            self.stale_shard_messages += 1
            return self._handoff_ack(True, None)
        state: Optional[Lattice] = None
        for body in message.payload:
            delta = decode(body)
            state = delta if state is None else state.join(delta)
        if state is not None and not state.is_bottom:
            absorbed = inner.absorb_state(state, src)
            # Drain, never send: every surviving co-owner already holds
            # (almost all of) this content; the δ-paths' coldness probes
            # cover the true divergence for a digest's worth of bytes.
            inner.sync_messages()
            if not absorbed.is_bottom:
                self._wal_append(shard, absorbed)
            self.scheduler.note_delta_activity(shard, src)
        return self._handoff_ack(True, self._shard_digest(shard).root(inner.state))

    def _fence_now(self, shard: int) -> None:
        """Seal a disowned shard's log so a re-add cannot resurrect it."""
        if self.tracer is not None:
            self.tracer.emit("handoff-fence", replica=self.replica, shard=shard)
        if self.wal is not None:
            self.wal.fence(shard)

    def _maybe_finalize_fence(self, shard: int) -> None:
        """Fence a retained source shard once its last handoff settles."""
        if shard in self._fencing and not self.scheduler.pending_handoffs(shard):
            del self._fencing[shard]
            if shard not in self.shards:
                self._digests.pop(shard, None)
            self._fence_now(shard)

    # ------------------------------------------------------------------
    # Fault signals from the transport and rebuild alignment.
    # ------------------------------------------------------------------

    def note_send_blocked(self, dst: int) -> None:
        """The transport refused a send to ``dst`` (down peer / cut link).

        Suspicion marks every δ-path shared with the peer, so digest
        probes fire as soon as the link heals instead of waiting out the
        full coldness threshold.
        """
        self.scheduler.note_peer_unreachable(dst)

    def restore_clock(self, ticks: int) -> None:
        """Carry the cluster round into a rebuilt store's scheduler.

        δ-paths restored by a WAL replay are marked active *here* —
        after the tick counter has jumped to the cluster round — so the
        replay counts as fresh activity instead of being instantly
        re-frozen by the clock realignment.
        """
        self.scheduler.restore_clock(ticks)
        replayed, self._replayed_paths = self._replayed_paths, ()
        for shard, peer in replayed:
            self.scheduler.note_delta_activity(shard, peer)

    # ------------------------------------------------------------------
    # Write-ahead logging and local recovery.
    # ------------------------------------------------------------------

    def _wal_append(self, shard: int, delta: Lattice) -> None:
        if self.wal is not None and not delta.is_bottom:
            self.wal.append(shard, delta)

    def replay_wal(self, *, verify: bool = False) -> int:
        """Rebuild shard states from the durable log; return shards restored.

        The recovery path of ``crash(lose_state=True)`` under a WAL
        recovery policy: each owned shard's log replays to the join of
        every delta the previous incarnations committed, and the result
        flows through :meth:`~repro.sync.protocol.Synchronizer.
        absorb_state` so the fresh synchronizer's bookkeeping (version
        vectors, Scuttlebutt stores) covers the restored content.  The
        propagation buffers the absorb hook fills are drained and
        discarded — replayed content is *restoration*, not news: every
        surviving co-owner already held it before the crash, and digest
        repair covers the genuinely divergent remainder.

        With ``verify`` (the ``wal+repair`` policy) every δ-path is
        additionally marked suspect, so the rebuilt replica immediately
        root-probes its co-owners instead of trusting the replay —
        one ``ROOT_BYTES`` probe per path buys certainty even when the
        peers' own suspicion signals were lost (e.g. they also crashed).
        Otherwise the replayed δ-paths are marked active once
        :meth:`restore_clock` realigns the scheduler.
        """
        if self.wal is None:
            return 0
        # The crash boundary of group commit, enforced by the recovery
        # path itself: records staged by the dead incarnation but never
        # committed are gone — replaying without dropping them would
        # retroactively make them durable at the next tick's commit.
        self.wal.discard_staged()
        restored = 0
        warm: List[Tuple[int, int]] = []
        for shard in sorted(self.shards):
            state = self.wal.replay(shard)
            if state is None or state.is_bottom:
                continue
            inner = self.shards[shard]
            inner.absorb_state(state, None)
            inner.sync_messages()  # drain, never sent: see docstring
            restored += 1
            warm.extend((shard, peer) for peer in inner.neighbors)
        if verify:
            self.scheduler.suspect_all_paths()
        else:
            self._replayed_paths = tuple(warm)
        return restored

    def _package(self, wire: List[Tuple[int, int, Message]]) -> List[Send]:
        """Frame shard messages for the wire, batching per destination.

        Each framed shard message costs one shard tag
        (``int_bytes``/one entry) on top of the inner accounting.
        """
        if not wire:
            return []
        tag_bytes = self.size_model.int_bytes
        if not self.scheduler.config.batch:
            return [
                Send(
                    dst=dst,
                    message=Message(
                        kind="kv-shard",
                        payload=(shard, inner),
                        payload_units=inner.payload_units,
                        payload_bytes=inner.payload_bytes,
                        metadata_bytes=inner.metadata_bytes + tag_bytes,
                        metadata_units=inner.metadata_units + 1,
                    ),
                )
                for dst, shard, inner in wire
            ]
        grouped: Dict[int, List[Tuple[int, Message]]] = {}
        for dst, shard, inner in wire:
            grouped.setdefault(dst, []).append((shard, inner))
        sends: List[Send] = []
        for dst, entries in grouped.items():
            sends.append(
                Send(
                    dst=dst,
                    message=Message(
                        kind="kv-batch",
                        payload=tuple(entries),
                        payload_units=sum(m.payload_units for _, m in entries),
                        payload_bytes=sum(m.payload_bytes for _, m in entries),
                        metadata_bytes=sum(m.metadata_bytes for _, m in entries)
                        + tag_bytes * len(entries),
                        metadata_units=sum(m.metadata_units for _, m in entries)
                        + len(entries),
                    ),
                )
            )
        return sends

    # ------------------------------------------------------------------
    # Memory accounting: sums over the shard instances.
    # ------------------------------------------------------------------

    def state_units(self) -> int:
        return sum(sync.state.size_units() for sync in self.shards.values())

    def state_bytes(self) -> int:
        return sum(sync.state.size_bytes(self.size_model) for sync in self.shards.values())

    def buffer_units(self) -> int:
        return sum(sync.buffer_units() for sync in self.shards.values())

    def buffer_bytes(self) -> int:
        return sum(sync.buffer_bytes() for sync in self.shards.values())

    def metadata_bytes(self) -> int:
        return sum(sync.metadata_bytes() for sync in self.shards.values())

    def metadata_units(self) -> int:
        return sum(sync.metadata_units() for sync in self.shards.values())

    def __repr__(self) -> str:
        return (
            f"KVStore(replica={self.replica}, shards={sorted(self.shards)}, "
            f"keys={sum(len(s.state) for s in self.shards.values())})"
        )


def kv_store_factory(
    ring,
    inner_factory,
    *,
    schema: Optional[Schema] = None,
    antientropy: Optional[AntiEntropyConfig] = None,
    wal_provider=None,
    registry_provider=None,
    tracer: Optional[Tracer] = None,
):
    """Bind store parameters into a cluster-compatible node factory.

    The returned callable has the :data:`~repro.sync.protocol.
    SynchronizerFactory` signature, so ``Cluster(config, factory,
    MapLattice())`` builds one store process per simulated node.

    ``ring`` may be a :class:`~repro.kv.ring.HashRing` or a zero-arg
    callable returning one, resolved at *build* time: a cluster whose
    membership changes mid-run passes a provider, so a store rebuilt by
    ``crash(lose_state=True)`` after a rebalance opens on the current
    placement instead of the ring the cluster started with.

    ``wal_provider`` maps a replica index to its durable
    :class:`~repro.wal.ReplicaWal`; it is a callable (not a dict) so
    a store rebuilt after ``crash(lose_state=True)`` reattaches to the
    *same* log object its predecessor wrote.

    ``registry_provider`` plays the same role for the replica's
    :class:`~repro.obs.metrics.MetricsRegistry` — the rebuilt store
    re-binds to the counters its predecessor incremented — and
    ``tracer`` (one per cluster, not per replica) threads the
    structured trace into every store built.
    """

    def factory(
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
    ) -> KVStore:
        return KVStore(
            replica=replica,
            neighbors=neighbors,
            bottom=bottom,
            n_nodes=n_nodes,
            size_model=size_model,
            ring=ring() if callable(ring) else ring,
            inner_factory=inner_factory,
            schema=schema,
            antientropy=antientropy,
            wal=wal_provider(replica) if wal_provider is not None else None,
            registry=(
                registry_provider(replica) if registry_provider is not None else None
            ),
            tracer=tracer,
        )

    inner_name = getattr(inner_factory, "name", getattr(inner_factory, "__name__", "?"))
    factory.__name__ = f"kv_store_{inner_name}".replace("-", "_")
    factory.name = f"kv[{inner_name}]"  # type: ignore[attr-defined]
    return factory
