"""Binary wire codec for lattice states and deltas.

The evaluation harness *counts* serialized sizes through
:class:`~repro.sizes.SizeModel`; a deployable library must also
actually produce the bytes.  This module is a compact, dependency-free
binary format covering every lattice shape in the library — the
grow-only constructs, the composition constructs, and the causal
(dot-store) family — with a round-trip guarantee::

    decode(encode(x)) == x

Format: one tag byte per node, unsigned LEB128 varints for lengths and
naturals, ZigZag-LEB128 for signed integers, UTF-8 for strings.
Collections are sorted before encoding, so equal lattice values always
produce identical bytes — encodings can be compared, hashed, and
deduplicated (handy for δ-buffer persistence and content-addressed
stores).

Atoms (set elements, map keys, register payloads) may be strings,
byte strings, signed integers, floats, booleans, ``None``, or (nested)
tuples of these.  Two constructs cannot round-trip and are rejected
with :class:`UnsupportedType`: :class:`~repro.lattice.maximals.
MaxElements` (its dominance order is an arbitrary function) and
:class:`~repro.lattice.primitives.Chain` over non-atom carriers.
"""

from __future__ import annotations

import struct
from io import BytesIO
from typing import Any, BinaryIO

from repro.causal.atom import Atom
from repro.causal.causal import Causal
from repro.causal.dots import CausalContext, Dot
from repro.causal.stores import DotFun, DotMap, DotSet, DotStore
from repro.lattice.base import Lattice
from repro.lattice.lexicographic import LexPair
from repro.lattice.linear_sum import LinearSum
from repro.lattice.map_lattice import MapLattice
from repro.lattice.primitives import Bool, Chain, MaxInt
from repro.lattice.product import PairLattice
from repro.lattice.set_lattice import SetLattice


class CodecError(ValueError):
    """Malformed input or a violated format invariant."""


class UnsupportedType(TypeError):
    """The value contains something the wire format cannot represent."""


# ---------------------------------------------------------------------------
# Varints.
# ---------------------------------------------------------------------------


def write_uvarint(out: BinaryIO, value: int) -> None:
    """Unsigned LEB128."""
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def read_uvarint(data: BinaryIO) -> int:
    result = 0
    shift = 0
    while True:
        chunk = data.read(1)
        if not chunk:
            raise CodecError("truncated varint")
        byte = chunk[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 140:  # 20 continuation bytes ≈ 2^140: junk, not data
            raise CodecError("varint too long")


def write_svarint(out: BinaryIO, value: int) -> None:
    """ZigZag-mapped signed LEB128 (exact for arbitrary precision)."""
    write_uvarint(out, value * 2 if value >= 0 else -value * 2 - 1)


def read_svarint(data: BinaryIO) -> int:
    raw = read_uvarint(data)
    return raw // 2 if raw % 2 == 0 else -(raw + 1) // 2


# ---------------------------------------------------------------------------
# Atoms (plain Python payloads).
# ---------------------------------------------------------------------------

_ATOM_NONE = 0x00
_ATOM_FALSE = 0x01
_ATOM_TRUE = 0x02
_ATOM_INT = 0x03
_ATOM_FLOAT = 0x04
_ATOM_STR = 0x05
_ATOM_BYTES = 0x06
_ATOM_TUPLE = 0x07


def write_atom(out: BinaryIO, value: Any) -> None:
    """Encode a plain payload (element, key, register value)."""
    if value is None:
        out.write(bytes((_ATOM_NONE,)))
    elif value is False:
        out.write(bytes((_ATOM_FALSE,)))
    elif value is True:
        out.write(bytes((_ATOM_TRUE,)))
    elif isinstance(value, int):
        out.write(bytes((_ATOM_INT,)))
        write_svarint(out, value)
    elif isinstance(value, float):
        out.write(bytes((_ATOM_FLOAT,)))
        out.write(struct.pack(">d", value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.write(bytes((_ATOM_STR,)))
        write_uvarint(out, len(encoded))
        out.write(encoded)
    elif isinstance(value, bytes):
        out.write(bytes((_ATOM_BYTES,)))
        write_uvarint(out, len(value))
        out.write(value)
    elif isinstance(value, tuple):
        out.write(bytes((_ATOM_TUPLE,)))
        write_uvarint(out, len(value))
        for part in value:
            write_atom(out, part)
    else:
        raise UnsupportedType(f"cannot encode payload of type {type(value).__name__}")


def read_atom(data: BinaryIO) -> Any:
    chunk = data.read(1)
    if not chunk:
        raise CodecError("truncated atom")
    tag = chunk[0]
    if tag == _ATOM_NONE:
        return None
    if tag == _ATOM_FALSE:
        return False
    if tag == _ATOM_TRUE:
        return True
    if tag == _ATOM_INT:
        return read_svarint(data)
    if tag == _ATOM_FLOAT:
        packed = data.read(8)
        if len(packed) != 8:
            raise CodecError("truncated float")
        return struct.unpack(">d", packed)[0]
    if tag == _ATOM_STR:
        length = read_uvarint(data)
        return _read_exact(data, length).decode("utf-8")
    if tag == _ATOM_BYTES:
        length = read_uvarint(data)
        return _read_exact(data, length)
    if tag == _ATOM_TUPLE:
        length = read_uvarint(data)
        return tuple(read_atom(data) for _ in range(length))
    raise CodecError(f"unknown atom tag 0x{tag:02x}")


def _read_exact(data: BinaryIO, length: int) -> bytes:
    chunk = data.read(length)
    if len(chunk) != length:
        raise CodecError(f"expected {length} bytes, got {len(chunk)}")
    return chunk


def _atom_sort_key(value: Any):
    """Deterministic ordering over heterogeneous atoms."""
    return (type(value).__name__, repr(value))


# ---------------------------------------------------------------------------
# Lattice values.
# ---------------------------------------------------------------------------

_TAG_MAXINT = 0x10
_TAG_BOOL = 0x11
_TAG_CHAIN = 0x12
_TAG_SET = 0x13
_TAG_MAP = 0x14
_TAG_PAIR = 0x15
_TAG_LEX = 0x16
_TAG_SUM = 0x17
_TAG_CAUSAL = 0x20
_TAG_LATTICE_ATOM = 0x21

_STORE_DOTSET = 0x01
_STORE_DOTFUN = 0x02
_STORE_DOTMAP = 0x03


def encode(value: Lattice) -> bytes:
    """Serialize a lattice value to canonical bytes."""
    out = BytesIO()
    _write_lattice(out, value)
    return out.getvalue()


def decode(data: bytes) -> Lattice:
    """Inverse of :func:`encode`; raises :class:`CodecError` on junk.

    Any malformed input surfaces as :class:`CodecError` — including
    corruption that parses structurally but violates a lattice
    constructor's invariants (e.g. a Chain value below its bottom).
    """
    stream = BytesIO(data)
    try:
        value = _read_lattice(stream)
    except CodecError:
        raise
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed lattice value: {exc}") from exc
    trailing = stream.read(1)
    if trailing:
        raise CodecError("trailing bytes after lattice value")
    return value


def _write_lattice(out: BinaryIO, value: Lattice) -> None:
    if isinstance(value, MaxInt):
        out.write(bytes((_TAG_MAXINT,)))
        write_uvarint(out, value.value)
    elif isinstance(value, Bool):
        out.write(bytes((_TAG_BOOL, 1 if value.value else 0)))
    elif isinstance(value, Chain):
        out.write(bytes((_TAG_CHAIN,)))
        write_atom(out, value.value)
        write_atom(out, value.bottom_value)
    elif isinstance(value, SetLattice):
        out.write(bytes((_TAG_SET,)))
        write_uvarint(out, len(value.elements))
        for element in sorted(value.elements, key=_atom_sort_key):
            write_atom(out, element)
    elif isinstance(value, MapLattice):
        out.write(bytes((_TAG_MAP,)))
        entries = sorted(value.entries.items(), key=lambda kv: _atom_sort_key(kv[0]))
        write_uvarint(out, len(entries))
        for key, bound in entries:
            write_atom(out, key)
            _write_lattice(out, bound)
    elif isinstance(value, LexPair):
        # Checked before PairLattice in case of subclassing; the two are
        # distinct classes here but share shape.
        out.write(bytes((_TAG_LEX,)))
        _write_lattice(out, value.first)
        _write_lattice(out, value.second)
    elif isinstance(value, PairLattice):
        out.write(bytes((_TAG_PAIR,)))
        _write_lattice(out, value.first)
        _write_lattice(out, value.second)
    elif isinstance(value, LinearSum):
        out.write(bytes((_TAG_SUM,)))
        out.write(bytes((0 if value.tag == "Left" else 1,)))
        _write_lattice(out, value.value)
        _write_lattice(out, value.left_bottom)
    elif isinstance(value, Atom):
        out.write(bytes((_TAG_LATTICE_ATOM,)))
        if value.is_bottom:
            out.write(bytes((0,)))
        else:
            out.write(bytes((1,)))
            write_atom(out, value.value)
    elif isinstance(value, Causal):
        out.write(bytes((_TAG_CAUSAL,)))
        _write_store(out, value.store)
        _write_context(out, value.context)
    else:
        raise UnsupportedType(
            f"no wire format for {type(value).__name__} "
            "(MaxElements and custom lattices are not serializable)"
        )


def _read_lattice(data: BinaryIO) -> Lattice:
    chunk = data.read(1)
    if not chunk:
        raise CodecError("truncated lattice value")
    tag = chunk[0]
    if tag == _TAG_MAXINT:
        return MaxInt(read_uvarint(data))
    if tag == _TAG_BOOL:
        return Bool(bool(_read_exact(data, 1)[0]))
    if tag == _TAG_CHAIN:
        value = read_atom(data)
        bottom = read_atom(data)
        return Chain(value, bottom=bottom)
    if tag == _TAG_SET:
        count = read_uvarint(data)
        return SetLattice(read_atom(data) for _ in range(count))
    if tag == _TAG_MAP:
        count = read_uvarint(data)
        entries = {}
        for _ in range(count):
            key = read_atom(data)
            entries[key] = _read_lattice(data)
        return MapLattice(entries)
    if tag == _TAG_LEX:
        return LexPair(_read_lattice(data), _read_lattice(data))
    if tag == _TAG_PAIR:
        return PairLattice(_read_lattice(data), _read_lattice(data))
    if tag == _TAG_SUM:
        side = _read_exact(data, 1)[0]
        value = _read_lattice(data)
        left_bottom = _read_lattice(data)
        tag_name = "Left" if side == 0 else "Right"
        return LinearSum(tag_name, value, left_bottom=left_bottom)
    if tag == _TAG_LATTICE_ATOM:
        present = _read_exact(data, 1)[0]
        return Atom(read_atom(data)) if present else Atom()
    if tag == _TAG_CAUSAL:
        store = _read_store(data)
        context = _read_context(data)
        return Causal(store, context)
    raise CodecError(f"unknown lattice tag 0x{tag:02x}")


# ---------------------------------------------------------------------------
# Causal pieces.
# ---------------------------------------------------------------------------


def _write_dot(out: BinaryIO, dot: Dot) -> None:
    write_atom(out, dot.replica)
    write_uvarint(out, dot.counter)


def _read_dot(data: BinaryIO) -> Dot:
    return Dot(read_atom(data), read_uvarint(data))


def _dot_sort_key(dot: Dot):
    return (_atom_sort_key(dot.replica), dot.counter)


def _write_context(out: BinaryIO, context: CausalContext) -> None:
    compact = sorted(context.compact.items(), key=lambda kv: _atom_sort_key(kv[0]))
    write_uvarint(out, len(compact))
    for replica, top in compact:
        write_atom(out, replica)
        write_uvarint(out, top)
    cloud = sorted(context.cloud, key=_dot_sort_key)
    write_uvarint(out, len(cloud))
    for dot in cloud:
        _write_dot(out, dot)


def _read_context(data: BinaryIO) -> CausalContext:
    compact = {}
    for _ in range(read_uvarint(data)):
        replica = read_atom(data)
        compact[replica] = read_uvarint(data)
    cloud = [_read_dot(data) for _ in range(read_uvarint(data))]
    return CausalContext(compact, cloud)


def _write_store(out: BinaryIO, store: DotStore) -> None:
    if isinstance(store, DotSet):
        out.write(bytes((_STORE_DOTSET,)))
        dots = sorted(store.dots(), key=_dot_sort_key)
        write_uvarint(out, len(dots))
        for dot in dots:
            _write_dot(out, dot)
    elif isinstance(store, DotFun):
        out.write(bytes((_STORE_DOTFUN,)))
        entries = sorted(store.items(), key=lambda kv: _dot_sort_key(kv[0]))
        write_uvarint(out, len(entries))
        for dot, bound in entries:
            _write_dot(out, dot)
            _write_lattice(out, bound)
    elif isinstance(store, DotMap):
        out.write(bytes((_STORE_DOTMAP,)))
        entries = sorted(store.items(), key=lambda kv: _atom_sort_key(kv[0]))
        write_uvarint(out, len(entries))
        for key, sub in entries:
            write_atom(out, key)
            _write_store(out, sub)
    else:  # pragma: no cover - the three shapes are closed
        raise UnsupportedType(f"unknown dot store {type(store).__name__}")


def _read_store(data: BinaryIO) -> DotStore:
    tag = _read_exact(data, 1)[0]
    if tag == _STORE_DOTSET:
        return DotSet(_read_dot(data) for _ in range(read_uvarint(data)))
    if tag == _STORE_DOTFUN:
        entries = {}
        for _ in range(read_uvarint(data)):
            dot = _read_dot(data)
            entries[dot] = _read_lattice(data)
        return DotFun(entries)
    if tag == _STORE_DOTMAP:
        entries = {}
        for _ in range(read_uvarint(data)):
            key = read_atom(data)
            entries[key] = _read_store(data)
        return DotMap(entries)
    raise CodecError(f"unknown dot-store tag 0x{tag:02x}")
