"""Binary wire codec for lattice states, deltas, and protocol messages.

The evaluation harness *counts* serialized sizes through
:class:`~repro.sizes.SizeModel`; a deployable library must also
actually produce the bytes.  This module is a compact, dependency-free
binary format covering every lattice shape in the library — the
grow-only constructs, the composition constructs, and the causal
(dot-store) family — with a round-trip guarantee::

    decode(encode(x)) == x

On top of the lattice codec, :func:`encode_message` /
:func:`decode_message` frame whole protocol messages (every wire
``kind`` the synchronizers and the kv store emit) as two-section
envelopes that keep the paper's payload/metadata split measurable on a
real transport; see the wire-envelope section below.

Format: one tag byte per node, unsigned LEB128 varints for lengths and
naturals, ZigZag-LEB128 for signed integers, UTF-8 for strings.
Collections are sorted before encoding, so equal lattice values always
produce identical bytes — encodings can be compared, hashed, and
deduplicated (handy for δ-buffer persistence and content-addressed
stores).

Atoms (set elements, map keys, register payloads) may be strings,
byte strings, signed integers, floats, booleans, ``None``, or (nested)
tuples of these.  Two constructs cannot round-trip and are rejected
with :class:`UnsupportedType`: :class:`~repro.lattice.maximals.
MaxElements` (its dominance order is an arbitrary function) and
:class:`~repro.lattice.primitives.Chain` over non-atom carriers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from io import BytesIO
from typing import Any, BinaryIO

from repro.causal.atom import Atom
from repro.causal.causal import Causal
from repro.causal.dots import CausalContext, Dot
from repro.causal.stores import DotFun, DotMap, DotSet, DotStore
from repro.lattice.base import Lattice
from repro.lattice.lexicographic import LexPair
from repro.lattice.linear_sum import LinearSum
from repro.lattice.map_lattice import MapLattice
from repro.lattice.primitives import Bool, Chain, MaxInt
from repro.lattice.product import PairLattice
from repro.lattice.set_lattice import SetLattice


class CodecError(ValueError):
    """Malformed input or a violated format invariant."""


class UnsupportedType(TypeError):
    """The value contains something the wire format cannot represent."""


# ---------------------------------------------------------------------------
# Varints.
# ---------------------------------------------------------------------------


def write_uvarint(out: BinaryIO, value: int) -> None:
    """Unsigned LEB128."""
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def read_uvarint(data: BinaryIO) -> int:
    result = 0
    shift = 0
    while True:
        chunk = data.read(1)
        if not chunk:
            raise CodecError("truncated varint")
        byte = chunk[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 140:  # 20 continuation bytes ≈ 2^140: junk, not data
            raise CodecError("varint too long")


def write_svarint(out: BinaryIO, value: int) -> None:
    """ZigZag-mapped signed LEB128 (exact for arbitrary precision)."""
    write_uvarint(out, value * 2 if value >= 0 else -value * 2 - 1)


def read_svarint(data: BinaryIO) -> int:
    raw = read_uvarint(data)
    return raw // 2 if raw % 2 == 0 else -(raw + 1) // 2


# ---------------------------------------------------------------------------
# Atoms (plain Python payloads).
# ---------------------------------------------------------------------------

_ATOM_NONE = 0x00
_ATOM_FALSE = 0x01
_ATOM_TRUE = 0x02
_ATOM_INT = 0x03
_ATOM_FLOAT = 0x04
_ATOM_STR = 0x05
_ATOM_BYTES = 0x06
_ATOM_TUPLE = 0x07


def write_atom(out: BinaryIO, value: Any) -> None:
    """Encode a plain payload (element, key, register value)."""
    if value is None:
        out.write(bytes((_ATOM_NONE,)))
    elif value is False:
        out.write(bytes((_ATOM_FALSE,)))
    elif value is True:
        out.write(bytes((_ATOM_TRUE,)))
    elif isinstance(value, int):
        out.write(bytes((_ATOM_INT,)))
        write_svarint(out, value)
    elif isinstance(value, float):
        out.write(bytes((_ATOM_FLOAT,)))
        out.write(struct.pack(">d", value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.write(bytes((_ATOM_STR,)))
        write_uvarint(out, len(encoded))
        out.write(encoded)
    elif isinstance(value, bytes):
        out.write(bytes((_ATOM_BYTES,)))
        write_uvarint(out, len(value))
        out.write(value)
    elif isinstance(value, tuple):
        out.write(bytes((_ATOM_TUPLE,)))
        write_uvarint(out, len(value))
        for part in value:
            write_atom(out, part)
    else:
        raise UnsupportedType(f"cannot encode payload of type {type(value).__name__}")


def read_atom(data: BinaryIO) -> Any:
    chunk = data.read(1)
    if not chunk:
        raise CodecError("truncated atom")
    tag = chunk[0]
    if tag == _ATOM_NONE:
        return None
    if tag == _ATOM_FALSE:
        return False
    if tag == _ATOM_TRUE:
        return True
    if tag == _ATOM_INT:
        return read_svarint(data)
    if tag == _ATOM_FLOAT:
        packed = data.read(8)
        if len(packed) != 8:
            raise CodecError("truncated float")
        return struct.unpack(">d", packed)[0]
    if tag == _ATOM_STR:
        length = read_uvarint(data)
        return _read_exact(data, length).decode("utf-8")
    if tag == _ATOM_BYTES:
        length = read_uvarint(data)
        return _read_exact(data, length)
    if tag == _ATOM_TUPLE:
        length = read_uvarint(data)
        return tuple(read_atom(data) for _ in range(length))
    raise CodecError(f"unknown atom tag 0x{tag:02x}")


def _read_exact(data: BinaryIO, length: int) -> bytes:
    chunk = data.read(length)
    if len(chunk) != length:
        raise CodecError(f"expected {length} bytes, got {len(chunk)}")
    return chunk


def _atom_sort_key(value: Any):
    """Deterministic ordering over heterogeneous atoms."""
    return (type(value).__name__, repr(value))


# ---------------------------------------------------------------------------
# Lattice values.
# ---------------------------------------------------------------------------

_TAG_MAXINT = 0x10
_TAG_BOOL = 0x11
_TAG_CHAIN = 0x12
_TAG_SET = 0x13
_TAG_MAP = 0x14
_TAG_PAIR = 0x15
_TAG_LEX = 0x16
_TAG_SUM = 0x17
_TAG_CAUSAL = 0x20
_TAG_LATTICE_ATOM = 0x21

_STORE_DOTSET = 0x01
_STORE_DOTFUN = 0x02
_STORE_DOTMAP = 0x03


def encode(value: Lattice) -> bytes:
    """Serialize a lattice value to canonical bytes."""
    out = BytesIO()
    _write_lattice(out, value)
    return out.getvalue()


def decode(data: bytes) -> Lattice:
    """Inverse of :func:`encode`; raises :class:`CodecError` on junk.

    Any malformed input surfaces as :class:`CodecError` — including
    corruption that parses structurally but violates a lattice
    constructor's invariants (e.g. a Chain value below its bottom).
    """
    stream = BytesIO(data)
    try:
        value = _read_lattice(stream)
    except CodecError:
        raise
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed lattice value: {exc}") from exc
    trailing = stream.read(1)
    if trailing:
        raise CodecError("trailing bytes after lattice value")
    return value


def _write_lattice(out: BinaryIO, value: Lattice) -> None:
    if isinstance(value, MaxInt):
        out.write(bytes((_TAG_MAXINT,)))
        write_uvarint(out, value.value)
    elif isinstance(value, Bool):
        out.write(bytes((_TAG_BOOL, 1 if value.value else 0)))
    elif isinstance(value, Chain):
        out.write(bytes((_TAG_CHAIN,)))
        write_atom(out, value.value)
        write_atom(out, value.bottom_value)
    elif isinstance(value, SetLattice):
        out.write(bytes((_TAG_SET,)))
        write_uvarint(out, len(value.elements))
        for element in sorted(value.elements, key=_atom_sort_key):
            write_atom(out, element)
    elif isinstance(value, MapLattice):
        out.write(bytes((_TAG_MAP,)))
        entries = sorted(value.entries.items(), key=lambda kv: _atom_sort_key(kv[0]))
        write_uvarint(out, len(entries))
        for key, bound in entries:
            write_atom(out, key)
            _write_lattice(out, bound)
    elif isinstance(value, LexPair):
        # Checked before PairLattice in case of subclassing; the two are
        # distinct classes here but share shape.
        out.write(bytes((_TAG_LEX,)))
        _write_lattice(out, value.first)
        _write_lattice(out, value.second)
    elif isinstance(value, PairLattice):
        out.write(bytes((_TAG_PAIR,)))
        _write_lattice(out, value.first)
        _write_lattice(out, value.second)
    elif isinstance(value, LinearSum):
        out.write(bytes((_TAG_SUM,)))
        out.write(bytes((0 if value.tag == "Left" else 1,)))
        _write_lattice(out, value.value)
        _write_lattice(out, value.left_bottom)
    elif isinstance(value, Atom):
        out.write(bytes((_TAG_LATTICE_ATOM,)))
        if value.is_bottom:
            out.write(bytes((0,)))
        else:
            out.write(bytes((1,)))
            write_atom(out, value.value)
    elif isinstance(value, Causal):
        out.write(bytes((_TAG_CAUSAL,)))
        _write_store(out, value.store)
        _write_context(out, value.context)
    else:
        raise UnsupportedType(
            f"no wire format for {type(value).__name__} "
            "(MaxElements and custom lattices are not serializable)"
        )


def _read_lattice(data: BinaryIO) -> Lattice:
    chunk = data.read(1)
    if not chunk:
        raise CodecError("truncated lattice value")
    tag = chunk[0]
    if tag == _TAG_MAXINT:
        return MaxInt(read_uvarint(data))
    if tag == _TAG_BOOL:
        return Bool(bool(_read_exact(data, 1)[0]))
    if tag == _TAG_CHAIN:
        value = read_atom(data)
        bottom = read_atom(data)
        return Chain(value, bottom=bottom)
    if tag == _TAG_SET:
        count = read_uvarint(data)
        return SetLattice(read_atom(data) for _ in range(count))
    if tag == _TAG_MAP:
        count = read_uvarint(data)
        entries = {}
        for _ in range(count):
            key = read_atom(data)
            entries[key] = _read_lattice(data)
        return MapLattice(entries)
    if tag == _TAG_LEX:
        return LexPair(_read_lattice(data), _read_lattice(data))
    if tag == _TAG_PAIR:
        return PairLattice(_read_lattice(data), _read_lattice(data))
    if tag == _TAG_SUM:
        side = _read_exact(data, 1)[0]
        value = _read_lattice(data)
        left_bottom = _read_lattice(data)
        tag_name = "Left" if side == 0 else "Right"
        return LinearSum(tag_name, value, left_bottom=left_bottom)
    if tag == _TAG_LATTICE_ATOM:
        present = _read_exact(data, 1)[0]
        return Atom(read_atom(data)) if present else Atom()
    if tag == _TAG_CAUSAL:
        store = _read_store(data)
        context = _read_context(data)
        return Causal(store, context)
    raise CodecError(f"unknown lattice tag 0x{tag:02x}")


# ---------------------------------------------------------------------------
# Causal pieces.
# ---------------------------------------------------------------------------


def _write_dot(out: BinaryIO, dot: Dot) -> None:
    write_atom(out, dot.replica)
    write_uvarint(out, dot.counter)


def _read_dot(data: BinaryIO) -> Dot:
    return Dot(read_atom(data), read_uvarint(data))


def _dot_sort_key(dot: Dot):
    return (_atom_sort_key(dot.replica), dot.counter)


def _write_context(out: BinaryIO, context: CausalContext) -> None:
    compact = sorted(context.compact.items(), key=lambda kv: _atom_sort_key(kv[0]))
    write_uvarint(out, len(compact))
    for replica, top in compact:
        write_atom(out, replica)
        write_uvarint(out, top)
    cloud = sorted(context.cloud, key=_dot_sort_key)
    write_uvarint(out, len(cloud))
    for dot in cloud:
        _write_dot(out, dot)


def _read_context(data: BinaryIO) -> CausalContext:
    compact = {}
    for _ in range(read_uvarint(data)):
        replica = read_atom(data)
        compact[replica] = read_uvarint(data)
    cloud = [_read_dot(data) for _ in range(read_uvarint(data))]
    return CausalContext(compact, cloud)


def _write_store(out: BinaryIO, store: DotStore) -> None:
    if isinstance(store, DotSet):
        out.write(bytes((_STORE_DOTSET,)))
        dots = sorted(store.dots(), key=_dot_sort_key)
        write_uvarint(out, len(dots))
        for dot in dots:
            _write_dot(out, dot)
    elif isinstance(store, DotFun):
        out.write(bytes((_STORE_DOTFUN,)))
        entries = sorted(store.items(), key=lambda kv: _dot_sort_key(kv[0]))
        write_uvarint(out, len(entries))
        for dot, bound in entries:
            _write_dot(out, dot)
            _write_lattice(out, bound)
    elif isinstance(store, DotMap):
        out.write(bytes((_STORE_DOTMAP,)))
        entries = sorted(store.items(), key=lambda kv: _atom_sort_key(kv[0]))
        write_uvarint(out, len(entries))
        for key, sub in entries:
            write_atom(out, key)
            _write_store(out, sub)
    else:  # pragma: no cover - the three shapes are closed
        raise UnsupportedType(f"unknown dot store {type(store).__name__}")


def _read_store(data: BinaryIO) -> DotStore:
    tag = _read_exact(data, 1)[0]
    if tag == _STORE_DOTSET:
        return DotSet(_read_dot(data) for _ in range(read_uvarint(data)))
    if tag == _STORE_DOTFUN:
        entries = {}
        for _ in range(read_uvarint(data)):
            dot = _read_dot(data)
            entries[dot] = _read_lattice(data)
        return DotFun(entries)
    if tag == _STORE_DOTMAP:
        entries = {}
        for _ in range(read_uvarint(data)):
            key = read_atom(data)
            entries[key] = _read_store(data)
        return DotMap(entries)
    raise CodecError(f"unknown dot-store tag 0x{tag:02x}")


# ---------------------------------------------------------------------------
# Wire envelopes for protocol messages.
#
# The synchronizers describe what they ship as a
# :class:`repro.sync.protocol.Message`: a ``kind`` discriminator, a
# protocol-specific payload object, and the *modelled* size accounting
# the simulator records.  The envelope codec below turns that into
# actual bytes for a real transport — and back — with the round-trip
# guarantee ``decode_message(encode_message(m)).payload == m.payload``
# for every wire kind the protocols emit.
#
# An envelope keeps the payload and the synchronization metadata in two
# separate sections, so measured wire bytes preserve the paper's
# payload/metadata split: lattice content (full states, δ-groups,
# operation deltas, Merkle leaf blobs) goes to the payload section,
# while version vectors, knowledge matrices, sequence numbers, causal
# clocks, digests, fingerprints, and all framing (kind tags, counts,
# lengths) go to the metadata section.  A decoded message therefore
# reports *measured* ``payload_bytes``/``metadata_bytes`` — what
# actually crossed the wire — while ``payload_units``/
# ``metadata_units`` travel verbatim in the envelope (they are the
# paper's machine-independent entry metric, not a byte count).
#
# Layout::
#
#     envelope := uvarint(len(payload_section)) payload_section
#                 uvarint(len(meta_section))    meta_section
#     meta_section starts with: uvarint(kind index)
#                               uvarint(payload_units)
#                               uvarint(metadata_units)
#
# Store-level framing (``kv-shard``/``kv-batch``) nests recursively:
# inner messages append to the same two sections, so the outer
# envelope's payload bytes are exactly the sum of the bundled lattice
# content.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WireFrame:
    """An encoded message envelope with its measured size split.

    ``payload_bytes + metadata_bytes == len(data)``: the metadata share
    includes the envelope framing (kind tag, unit counters, section
    lengths), which is the documented overhead a real transport pays on
    top of the size model's estimate.
    """

    data: bytes
    payload_bytes: int
    metadata_bytes: int

    @property
    def total_bytes(self) -> int:
        return len(self.data)


#: Registry of wire kinds; the uvarint kind tag indexes this tuple, so
#: the order is part of the format — append only.
WIRE_KINDS = (
    "state",  # state-based: full lattice state
    "delta",  # delta-based: one δ-group
    "keyed-delta",  # per-object delta-based: MapLattice of δ-groups
    "digest",  # Scuttlebutt summary vector (± GC knowledge matrix)
    "deltas",  # Scuttlebutt reply: versioned deltas
    "ops",  # op-based: causally-tagged operation envelopes
    "delta-seq",  # acked delta-based: δ-group + covered seqs
    "delta-ack",  # acked delta-based: acknowledged seqs
    "mt-node",  # Merkle descent: (prefix, digest) nodes
    "mt-leaves",  # Merkle bucket ship (expects complement reply)
    "mt-leaves-final",  # Merkle bucket ship (final leg)
    "kv-digest",  # store repair: root-hash divergence probe
    "kv-diff",  # store repair: fingerprint-digest escalation
    "kv-repair",  # store repair: (delta, echo digest | None)
    "kv-shard",  # store framing: one (shard, message)
    "kv-batch",  # store framing: bundled (shard, message) pairs
    "kv-handoff-offer",  # rebalance: shard handoff announcement (root, size hint)
    "kv-handoff-segment",  # rebalance: compacted WAL segment (encoded delta records)
    "kv-handoff-ack",  # rebalance: receiver verdict (complete flag, replayed root)
)
_WIRE_KIND_INDEX = {kind: index for index, kind in enumerate(WIRE_KINDS)}


def _write_wire_vector(out: BinaryIO, vector: dict) -> None:
    """A version vector: replica → counter, deterministically ordered."""
    entries = sorted(vector.items(), key=lambda kv: _atom_sort_key(kv[0]))
    write_uvarint(out, len(entries))
    for origin, counter in entries:
        write_atom(out, origin)
        write_uvarint(out, counter)


def _read_wire_vector(data: BinaryIO) -> dict:
    vector = {}
    for _ in range(read_uvarint(data)):
        origin = read_atom(data)
        vector[origin] = read_uvarint(data)
    return vector


def _write_state(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    _write_lattice(payload_out, payload)


def _read_state(payload_in: BinaryIO, meta_in: BinaryIO):
    return _read_lattice(payload_in)


def _write_digest(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    if isinstance(payload, dict) and set(payload) == {"vector", "knowledge"}:
        # Scuttlebutt-GC: the vector plus the gossiped knowledge matrix.
        meta_out.write(b"\x01")
        _write_wire_vector(meta_out, payload["vector"])
        nodes = sorted(payload["knowledge"].items(), key=lambda kv: _atom_sort_key(kv[0]))
        write_uvarint(meta_out, len(nodes))
        for node, vector in nodes:
            write_atom(meta_out, node)
            _write_wire_vector(meta_out, vector)
    else:
        meta_out.write(b"\x00")
        _write_wire_vector(meta_out, payload)


def _read_digest(payload_in: BinaryIO, meta_in: BinaryIO):
    variant = _read_exact(meta_in, 1)[0]
    vector = _read_wire_vector(meta_in)
    if variant == 0:
        return vector
    knowledge = {}
    for _ in range(read_uvarint(meta_in)):
        node = read_atom(meta_in)
        knowledge[node] = _read_wire_vector(meta_in)
    return {"vector": vector, "knowledge": knowledge}


def _write_versioned_deltas(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    write_uvarint(meta_out, len(payload))
    for (origin, seq), delta in payload:
        write_atom(meta_out, origin)
        write_uvarint(meta_out, seq)
        _write_lattice(payload_out, delta)


def _read_versioned_deltas(payload_in: BinaryIO, meta_in: BinaryIO):
    pairs = []
    for _ in range(read_uvarint(meta_in)):
        origin = read_atom(meta_in)
        seq = read_uvarint(meta_in)
        pairs.append(((origin, seq), _read_lattice(payload_in)))
    return pairs


def _write_ops(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    write_uvarint(meta_out, len(payload))
    for envelope in payload:
        write_atom(meta_out, envelope.origin)
        write_uvarint(meta_out, envelope.seq)
        _write_wire_vector(meta_out, envelope.clock)
        _write_lattice(payload_out, envelope.payload)


def _read_ops(payload_in: BinaryIO, meta_in: BinaryIO):
    # Imported lazily: repro.sync pulls this module in through the
    # Merkle baseline, so a module-level import would be circular.
    from repro.sync.opbased import OpEnvelope

    envelopes = []
    for _ in range(read_uvarint(meta_in)):
        origin = read_atom(meta_in)
        seq = read_uvarint(meta_in)
        clock = _read_wire_vector(meta_in)
        envelopes.append(
            OpEnvelope(origin=origin, seq=seq, clock=clock, payload=_read_lattice(payload_in))
        )
    return envelopes


def _write_seqs(out: BinaryIO, seqs) -> None:
    write_uvarint(out, len(seqs))
    for seq in seqs:
        write_uvarint(out, seq)


def _read_seqs(data: BinaryIO) -> tuple:
    return tuple(read_uvarint(data) for _ in range(read_uvarint(data)))


def _write_delta_seq(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    group, covered = payload
    _write_lattice(payload_out, group)
    _write_seqs(meta_out, covered)


def _read_delta_seq(payload_in: BinaryIO, meta_in: BinaryIO):
    group = _read_lattice(payload_in)
    return (group, _read_seqs(meta_in))


def _write_delta_ack(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    _write_seqs(meta_out, payload)


def _read_delta_ack(payload_in: BinaryIO, meta_in: BinaryIO):
    return _read_seqs(meta_in)


def _write_trie_nodes(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    write_uvarint(meta_out, len(payload))
    for prefix, node_digest in payload:
        write_atom(meta_out, prefix)
        write_atom(meta_out, node_digest)


def _read_trie_nodes(payload_in: BinaryIO, meta_in: BinaryIO):
    return tuple(
        (read_atom(meta_in), read_atom(meta_in)) for _ in range(read_uvarint(meta_in))
    )


def _write_trie_leaves(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    write_uvarint(meta_out, len(payload))
    for prefix, leaves in payload:
        write_atom(meta_out, prefix)
        write_uvarint(meta_out, len(leaves))
        for leaf_digest, blob in leaves:
            write_atom(meta_out, leaf_digest)
            # Leaf payloads are already codec-encoded irreducibles; the
            # blob is payload, its length prefix is framing.
            write_uvarint(meta_out, len(blob))
            payload_out.write(blob)


def _read_trie_leaves(payload_in: BinaryIO, meta_in: BinaryIO):
    buckets = []
    for _ in range(read_uvarint(meta_in)):
        prefix = read_atom(meta_in)
        leaves = []
        for _ in range(read_uvarint(meta_in)):
            leaf_digest = read_atom(meta_in)
            blob = _read_exact(payload_in, read_uvarint(meta_in))
            leaves.append((leaf_digest, blob))
        buckets.append((prefix, tuple(leaves)))
    return tuple(buckets)


def _write_kv_digest(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    write_atom(meta_out, payload)


def _read_kv_digest(payload_in: BinaryIO, meta_in: BinaryIO):
    return read_atom(meta_in)


def _write_fingerprints(out: BinaryIO, fingerprints) -> None:
    write_uvarint(out, len(fingerprints))
    for entry in sorted(fingerprints):
        write_atom(out, entry)


def _read_fingerprints(data: BinaryIO) -> frozenset:
    return frozenset(read_atom(data) for _ in range(read_uvarint(data)))


def _write_kv_diff(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    _write_fingerprints(meta_out, payload)


def _read_kv_diff(payload_in: BinaryIO, meta_in: BinaryIO):
    return _read_fingerprints(meta_in)


def _write_kv_repair(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    delta, echo = payload
    if echo is None:
        meta_out.write(b"\x00")
    else:
        meta_out.write(b"\x01")
        _write_fingerprints(meta_out, echo)
    _write_lattice(payload_out, delta)


def _read_kv_repair(payload_in: BinaryIO, meta_in: BinaryIO):
    has_echo = _read_exact(meta_in, 1)[0]
    echo = _read_fingerprints(meta_in) if has_echo else None
    return (_read_lattice(payload_in), echo)


def _write_kv_shard(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    shard, inner = payload
    write_uvarint(meta_out, shard)
    _write_message(inner, payload_out, meta_out)


def _read_kv_shard(payload_in: BinaryIO, meta_in: BinaryIO):
    shard = read_uvarint(meta_in)
    return (shard, _read_message(payload_in, meta_in))


def _write_kv_batch(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    write_uvarint(meta_out, len(payload))
    for shard, inner in payload:
        write_uvarint(meta_out, shard)
        _write_message(inner, payload_out, meta_out)


def _read_kv_batch(payload_in: BinaryIO, meta_in: BinaryIO):
    entries = []
    for _ in range(read_uvarint(meta_in)):
        shard = read_uvarint(meta_in)
        entries.append((shard, _read_message(payload_in, meta_in)))
    return tuple(entries)


def _write_kv_handoff_offer(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    root, size_hint = payload
    write_atom(meta_out, root)
    write_uvarint(meta_out, size_hint)


def _read_kv_handoff_offer(payload_in: BinaryIO, meta_in: BinaryIO):
    root = read_atom(meta_in)
    return (root, read_uvarint(meta_in))


def _write_kv_handoff_segment(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    # Record bodies are already codec-encoded deltas straight off the
    # shard log; the bodies are payload, their length prefixes framing.
    write_uvarint(meta_out, len(payload))
    for body in payload:
        write_uvarint(meta_out, len(body))
        payload_out.write(body)


def _read_kv_handoff_segment(payload_in: BinaryIO, meta_in: BinaryIO):
    return tuple(
        _read_exact(payload_in, read_uvarint(meta_in))
        for _ in range(read_uvarint(meta_in))
    )


def _write_kv_handoff_ack(payload, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    complete, root = payload
    meta_out.write(b"\x01" if complete else b"\x00")
    if root is None:
        meta_out.write(b"\x00")
    else:
        meta_out.write(b"\x01")
        write_atom(meta_out, root)


def _read_kv_handoff_ack(payload_in: BinaryIO, meta_in: BinaryIO):
    complete = bool(_read_exact(meta_in, 1)[0])
    has_root = _read_exact(meta_in, 1)[0]
    root = read_atom(meta_in) if has_root else None
    return (complete, root)


_WIRE_CODECS = {
    "state": (_write_state, _read_state),
    "delta": (_write_state, _read_state),
    "keyed-delta": (_write_state, _read_state),
    "digest": (_write_digest, _read_digest),
    "deltas": (_write_versioned_deltas, _read_versioned_deltas),
    "ops": (_write_ops, _read_ops),
    "delta-seq": (_write_delta_seq, _read_delta_seq),
    "delta-ack": (_write_delta_ack, _read_delta_ack),
    "mt-node": (_write_trie_nodes, _read_trie_nodes),
    "mt-leaves": (_write_trie_leaves, _read_trie_leaves),
    "mt-leaves-final": (_write_trie_leaves, _read_trie_leaves),
    "kv-digest": (_write_kv_digest, _read_kv_digest),
    "kv-diff": (_write_kv_diff, _read_kv_diff),
    "kv-repair": (_write_kv_repair, _read_kv_repair),
    "kv-shard": (_write_kv_shard, _read_kv_shard),
    "kv-batch": (_write_kv_batch, _read_kv_batch),
    "kv-handoff-offer": (_write_kv_handoff_offer, _read_kv_handoff_offer),
    "kv-handoff-segment": (_write_kv_handoff_segment, _read_kv_handoff_segment),
    "kv-handoff-ack": (_write_kv_handoff_ack, _read_kv_handoff_ack),
}


def _write_message(message, payload_out: BinaryIO, meta_out: BinaryIO) -> None:
    try:
        index = _WIRE_KIND_INDEX[message.kind]
    except KeyError:
        raise UnsupportedType(
            f"no wire format for message kind {message.kind!r} "
            f"(known kinds: {', '.join(WIRE_KINDS)})"
        ) from None
    write_uvarint(meta_out, index)
    write_uvarint(meta_out, message.payload_units)
    write_uvarint(meta_out, message.metadata_units)
    writer, _ = _WIRE_CODECS[message.kind]
    writer(message.payload, payload_out, meta_out)


def _read_message(payload_in: BinaryIO, meta_in: BinaryIO):
    payload_start = payload_in.tell()
    meta_start = meta_in.tell()
    index = read_uvarint(meta_in)
    if index >= len(WIRE_KINDS):
        raise CodecError(f"unknown wire kind tag {index}")
    kind = WIRE_KINDS[index]
    payload_units = read_uvarint(meta_in)
    metadata_units = read_uvarint(meta_in)
    _, reader = _WIRE_CODECS[kind]
    try:
        payload = reader(payload_in, meta_in)
    except CodecError:
        raise
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed {kind} payload: {exc}") from exc
    return _WireMessage(
        kind=kind,
        payload=payload,
        payload_units=payload_units,
        payload_bytes=payload_in.tell() - payload_start,
        metadata_bytes=meta_in.tell() - meta_start,
        metadata_units=metadata_units,
    )


def frame_message(message) -> WireFrame:
    """Encode a protocol message and report its measured size split.

    Messages are frozen and their payloads immutable, so the frame is a
    pure function of the message object — it is memoized on the message
    itself.  Synchronizers exploit this by *sharing* one message object
    across the destinations whose δ-group is identical: the bytes are
    produced once and every subsequent send (or retransmission) of the
    same object reuses them.
    """
    memo = getattr(message, "_frame_memo", None)
    if memo is not None:
        return memo
    payload_out = BytesIO()
    meta_out = BytesIO()
    _write_message(message, payload_out, meta_out)
    payload_section = payload_out.getvalue()
    meta_section = meta_out.getvalue()
    out = BytesIO()
    write_uvarint(out, len(payload_section))
    out.write(payload_section)
    write_uvarint(out, len(meta_section))
    out.write(meta_section)
    data = out.getvalue()
    frame = WireFrame(
        data=data,
        payload_bytes=len(payload_section),
        metadata_bytes=len(data) - len(payload_section),
    )
    # ``Message`` is a frozen dataclass without ``__slots__``; the memo
    # rides on the instance, invisible to equality and dataclasses.
    # repro: lint-ok[frozen-mutation] sanctioned memo: the frame is a pure function of the frozen message
    object.__setattr__(message, "_frame_memo", frame)
    return frame


def encode_message(message) -> bytes:
    """Serialize a protocol :class:`~repro.sync.protocol.Message`.

    Inverse: :func:`decode_message`.  The encoding covers every wire
    kind the library's synchronizers and the kv store emit (see
    :data:`WIRE_KINDS`); an unknown kind raises
    :class:`UnsupportedType`.
    """
    return frame_message(message).data


def decode_message(data: bytes):
    """Inverse of :func:`encode_message`.

    The returned message carries *measured* sizes: ``payload_bytes`` is
    the payload section's length and ``metadata_bytes`` is everything
    else in the envelope (metadata section plus framing), so
    ``total_bytes == len(data)`` always holds.  ``payload_units`` and
    ``metadata_units`` are the model metrics carried in the envelope.
    """
    stream = BytesIO(data)
    payload_section = _read_exact(stream, read_uvarint(stream))
    meta_section = _read_exact(stream, read_uvarint(stream))
    if stream.read(1):
        raise CodecError("trailing bytes after message envelope")
    payload_in = BytesIO(payload_section)
    meta_in = BytesIO(meta_section)
    message = _read_message(payload_in, meta_in)
    if payload_in.read(1) or meta_in.read(1):
        raise CodecError("trailing bytes inside message sections")
    return _replace(
        message,
        payload_bytes=len(payload_section),
        metadata_bytes=len(data) - len(payload_section),
    )


# Imported at the bottom on purpose: ``repro.sync`` pulls this module
# in while initializing (through the Merkle baseline), so importing the
# protocol Message at the top would be circular.
from dataclasses import replace as _replace  # noqa: E402

from repro.sync.protocol import Message as _WireMessage  # noqa: E402
