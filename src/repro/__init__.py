"""repro — Efficient Synchronization of State-based CRDTs.

A complete, self-contained reproduction of Enes, Almeida, Baquero &
Leitão, *Efficient Synchronization of State-based CRDTs* (ICDE 2019):

* :mod:`repro.lattice` — join-semilattices, composition constructs,
  irredundant join decompositions ``⇓x``, and optimal deltas ``∆(a, b)``;
* :mod:`repro.crdt` — GCounter, GSet, GMap, PNCounter, LWWRegister,
  2P-Set, MVRegister, and BCounter built on the lattice substrate;
* :mod:`repro.causal` — the observed-remove family (AWSet, RWSet,
  EWFlag, DWFlag, multi-value registers, resettable counters, OR-maps)
  over dot stores and causal contexts, with the same optimal deltas;
* :mod:`repro.sync` — state-based, delta-based (classic / BP / RR /
  BP+RR), Scuttlebutt (± GC), operation-based, and digest-driven
  synchronization behind one interface;
* :mod:`repro.net` — the transport seam: one replica runtime per
  synchronizer over a :class:`Transport` interface, implemented by the
  deterministic simulator and by real asyncio localhost-TCP sockets;
* :mod:`repro.sim` — a deterministic discrete-event cluster simulator
  with transmission / memory / processing metrology and crash /
  partition fault injection;
* :mod:`repro.kv` — a sharded, replicated key-value store hosting the
  synchronizers: consistent-hash placement, typed heterogeneous
  keyspace, budgeted per-shard anti-entropy, partition recovery;
* :mod:`repro.workloads` — the Table I micro-benchmarks and the
  Table II Retwis application under Zipf contention;
* :mod:`repro.experiments` — drivers that regenerate every figure and
  table of the paper's evaluation.

Quickstart::

    from repro import GSet, delta

    a, b = GSet("A"), GSet("B")
    a.add("x"); b.add("y")
    d = delta(b.state, a.state)   # optimal delta: what a is missing
    a.merge(d)
"""

from repro.lattice import (
    Bool,
    Chain,
    LexPair,
    LinearSum,
    MapLattice,
    MaxElements,
    MaxInt,
    PairLattice,
    SetLattice,
    decomposition,
    delta,
    join_all,
)
from repro.crdt import (
    BCounter,
    Crdt,
    GCounter,
    GMap,
    GSet,
    LWWRegister,
    MVRegister,
    PNCounter,
    TwoPSet,
    optimal_delta_mutator,
)
from repro.causal import (
    AWSet,
    Causal,
    CausalContext,
    CausalMVRegister,
    CCounter,
    Dot,
    DWFlag,
    EWFlag,
    ORMap,
    RWSet,
)
from repro.sync import (
    ALGORITHMS,
    DeltaBased,
    OpBased,
    Scuttlebutt,
    ScuttlebuttGC,
    StateBased,
    classic,
    delta_bp,
    delta_bp_rr,
    delta_rr,
    digest_driven_sync,
    state_driven_sync,
)
from repro.codec import decode, decode_message, encode, encode_message
from repro.net import AsyncTcpTransport, ReplicaRuntime, SimTransport, Transport
from repro.sim import Cluster, ClusterConfig, SizeModel, partial_mesh, tree, run_experiment

__version__ = "1.0.0"

__all__ = [
    # lattice
    "Bool",
    "Chain",
    "LexPair",
    "LinearSum",
    "MapLattice",
    "MaxElements",
    "MaxInt",
    "PairLattice",
    "SetLattice",
    "decomposition",
    "delta",
    "join_all",
    # crdt
    "BCounter",
    "Crdt",
    "GCounter",
    "GMap",
    "GSet",
    "LWWRegister",
    "MVRegister",
    "PNCounter",
    "TwoPSet",
    "optimal_delta_mutator",
    # causal
    "AWSet",
    "Causal",
    "CausalContext",
    "CausalMVRegister",
    "CCounter",
    "Dot",
    "DWFlag",
    "EWFlag",
    "ORMap",
    "RWSet",
    # sync
    "ALGORITHMS",
    "DeltaBased",
    "OpBased",
    "Scuttlebutt",
    "ScuttlebuttGC",
    "StateBased",
    "classic",
    "delta_bp",
    "delta_bp_rr",
    "delta_rr",
    "digest_driven_sync",
    "state_driven_sync",
    # codec
    "decode",
    "encode",
    "decode_message",
    "encode_message",
    # net
    "AsyncTcpTransport",
    "ReplicaRuntime",
    "SimTransport",
    "Transport",
    # sim
    "Cluster",
    "ClusterConfig",
    "SizeModel",
    "partial_mesh",
    "tree",
    "run_experiment",
    "__version__",
]
