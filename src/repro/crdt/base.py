"""Common machinery for state-based CRDT objects.

A :class:`Crdt` owns an immutable lattice value (its *state*) plus the
replica identifier used by identity-keyed types (counters).  Mutators
update the state in place (replacing the immutable value) and return the
**delta** they produced, so callers can hand it to a delta-based
synchronizer; standard state-based usage simply ignores the return
value.

The module also exposes :func:`optimal_delta_mutator`, the paper's
recipe (Section III-B) for deriving a minimal δ-mutator from any
mutator::

    mδ(x) = ∆(m(x), x)
"""

from __future__ import annotations

from typing import Callable, Hashable, TypeVar

from repro.lattice.base import Lattice

L = TypeVar("L", bound=Lattice)


def optimal_delta_mutator(mutator: Callable[[L], L]) -> Callable[[L], L]:
    """Derive the minimal δ-mutator from a full-state mutator.

    Given an inflationary mutator ``m`` (``x ⊑ m(x)``), returns ``mδ``
    such that ``m(x) = x ⊔ mδ(x)`` and ``mδ(x)`` is the least state with
    that property.  This is how the paper repairs non-optimal δ-mutators
    such as the original GSet ``addδ`` that returned ``{e}`` even when
    ``e`` was already present.

    >>> from repro.lattice import SetLattice
    >>> add_a = lambda s: s.add("a")
    >>> add_a_delta = optimal_delta_mutator(add_a)
    >>> add_a_delta(SetLattice({"a"})).is_bottom   # already present
    True
    """

    def delta_mutator(state: L) -> L:
        mutated = mutator(state)
        return mutated.delta(state)

    return delta_mutator


class Crdt:
    """Base class: a replica-local CRDT object over a lattice state.

    Attributes:
        replica: Identifier of the local replica; used by types whose
            state is keyed by replica identity.
        state: The current lattice value.  Always replaced, never
            mutated, so snapshots taken by synchronizers stay valid.
    """

    __slots__ = ("replica", "state")

    def __init__(self, replica: Hashable, state: Lattice) -> None:
        self.replica = replica
        self.state = state

    # ------------------------------------------------------------------
    # Synchronization-facing operations.
    # ------------------------------------------------------------------

    def apply_delta(self, delta: Lattice) -> Lattice:
        """Join ``delta`` into the local state and return it unchanged.

        The single funnel through which every mutator updates the state;
        keeping one code path makes the inflation invariant easy to
        audit.
        """
        self.state = self.state.join(delta)
        return delta

    def merge(self, other: "Crdt | Lattice") -> None:
        """Join a remote replica's state (or a raw lattice value)."""
        remote = other.state if isinstance(other, Crdt) else other
        self.state = self.state.join(remote)

    def diff(self, remote_state: Lattice) -> Lattice:
        """Optimal delta bringing ``remote_state`` up to date with us.

        ``self.diff(r) ⊔ r = self.state ⊔ r`` with the smallest possible
        left-hand side — the ``∆`` function of Section III-B.
        """
        return self.state.delta(remote_state)

    def converged_with(self, other: "Crdt") -> bool:
        """True when both replicas hold identical states."""
        return self.state == other.state

    def __repr__(self) -> str:
        return f"{type(self).__name__}(replica={self.replica!r}, state={self.state!r})"
