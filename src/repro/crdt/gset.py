"""Grow-only set — Figure 2b of the paper.

The state is the powerset lattice under union.  The optimal δ-mutator
``addδ`` returns the singleton ``{e}`` only when ``e`` is new, and ``⊥``
otherwise — the paper points out that the original formulation (always
returning ``{e}``) is a source of redundant delta propagation.
"""

from __future__ import annotations

from typing import AbstractSet, Hashable

from repro.crdt.base import Crdt
from repro.lattice.set_lattice import SetLattice


class GSet(Crdt):
    """A set that only accumulates elements.

    >>> a, b = GSet("A"), GSet("B")
    >>> _ = a.add("x"); _ = b.add("y")
    >>> a.merge(b)
    >>> sorted(a.value)
    ['x', 'y']
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: SetLattice | None = None) -> None:
        super().__init__(replica, state if state is not None else SetLattice())

    @staticmethod
    def bottom() -> SetLattice:
        """The empty set ``⊥``."""
        return SetLattice()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def add(self, element: Hashable) -> SetLattice:
        """Apply ``add`` locally and return the optimal delta.

        Implements the paper's optimal ``addδ``: the delta is ``{e}`` if
        the element is new and ``⊥`` if it was already present.
        """
        delta = self.add_delta(self.state, element)
        return self.apply_delta(delta)

    def add_delta(self, state: SetLattice, element: Hashable) -> SetLattice:
        """The δ-mutator ``addδ`` evaluated against an explicit state."""
        if element in state:
            return state.bottom_like()
        return SetLattice((element,))

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def value(self) -> AbstractSet[Hashable]:
        """``value(s) = s`` — the accumulated element set."""
        return self.state.elements

    def __contains__(self, element: Hashable) -> bool:
        return element in self.state

    def __len__(self) -> int:
        return len(self.state)
