"""Multi-value register over the maximal-elements construct ``M(P)``.

Concurrent writes to a register cannot be ordered; the multi-value
register keeps *all* maximal writes and lets the application reconcile.
Each write is tagged with a version vector; the partial order ``P`` is
vector dominance, and the state is the antichain of causally maximal
writes — exactly the ``M(P)`` composition of Appendix B/C.

A local write reads the current antichain, takes the pointwise maximum
of all visible vectors, bumps the local replica's entry, and installs a
single tagged write that dominates everything seen — so sequential
writes collapse to one value while concurrent writes coexist.
"""

from __future__ import annotations

from typing import Any, Hashable, Tuple

from repro.crdt.base import Crdt
from repro.lattice.maximals import MaxElements

#: A tagged write: (version-vector as sorted (replica, counter) pairs, value).
TaggedWrite = Tuple[Tuple[Tuple[Hashable, int], ...], Any]


def _vector_of(write: TaggedWrite) -> dict:
    return dict(write[0])


def dominates(left: TaggedWrite, right: TaggedWrite) -> bool:
    """Vector dominance: every entry of ``right`` is covered by ``left``.

    Used as the partial order for the ``M(P)`` antichain.  Equal writes
    dominate each other (the order is reflexive); incomparable vectors
    (concurrent writes) dominate in neither direction.
    """
    lv, rv = _vector_of(left), _vector_of(right)
    for replica, counter in rv.items():
        if lv.get(replica, 0) < counter:
            return False
    return True


def _freeze(vector: dict) -> Tuple[Tuple[Hashable, int], ...]:
    return tuple(sorted(vector.items(), key=lambda kv: repr(kv[0])))


class MVRegister(Crdt):
    """A register that exposes every causally concurrent write.

    >>> a, b = MVRegister("A"), MVRegister("B")
    >>> _ = a.write("from-a"); _ = b.write("from-b")   # concurrent
    >>> a.merge(b)
    >>> sorted(a.values)
    ['from-a', 'from-b']
    >>> _ = a.write("resolved")                        # dominates both
    >>> a.values
    ['resolved']
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: MaxElements | None = None) -> None:
        if state is None:
            state = MaxElements((), dominates=dominates)
        super().__init__(replica, state)

    @staticmethod
    def bottom() -> MaxElements:
        """The empty antichain: no writes yet."""
        return MaxElements((), dominates=dominates)

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def write(self, value: Any) -> MaxElements:
        """Install ``value`` above everything currently visible."""
        assert isinstance(self.state, MaxElements)
        merged: dict = {}
        for tagged in self.state:
            for replica, counter in _vector_of(tagged).items():
                merged[replica] = max(merged.get(replica, 0), counter)
        merged[self.replica] = merged.get(self.replica, 0) + 1
        tagged_write: TaggedWrite = (_freeze(merged), value)
        delta = MaxElements((tagged_write,), dominates=dominates)
        return self.apply_delta(delta)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def values(self) -> list:
        """All causally maximal values, sorted for determinism."""
        return sorted((value for _, value in self.state), key=repr)

    def __len__(self) -> int:
        return len(self.state)
