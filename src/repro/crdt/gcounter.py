"""Grow-only counter — Figure 2a of the paper.

The state maps replica identifiers to per-replica increment tallies,
``GCounter = I ↪→ ℕ``; the counter value is the sum of the entries.
The mutator ``inc`` bumps the local replica's entry; its optimal
δ-mutator returns just the updated entry (a one-entry map), which is
the irreducible ``{i ↦ p(i) + 1}``.
"""

from __future__ import annotations

from typing import Hashable

from repro.crdt.base import Crdt
from repro.lattice.map_lattice import MapLattice
from repro.lattice.primitives import MaxInt


class GCounter(Crdt):
    """A counter that only grows, summed across per-replica entries.

    >>> a, b = GCounter("A"), GCounter("B")
    >>> _ = a.increment(); _ = b.increment(); _ = b.increment()
    >>> a.merge(b)
    >>> a.value
    3
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: MapLattice | None = None) -> None:
        super().__init__(replica, state if state is not None else MapLattice())

    @staticmethod
    def bottom() -> MapLattice:
        """The empty map ``⊥`` all replicas start from."""
        return MapLattice()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def increment(self, by: int = 1) -> MapLattice:
        """Apply ``inc`` locally and return the optimal delta.

        The delta is the single updated entry, exactly the paper's
        ``incδ_i(p) = {i ↦ p(i) + 1}``.
        """
        if by <= 0:
            raise ValueError(f"increment must be positive, got {by}")
        delta = self.increment_delta(self.state, by)
        return self.apply_delta(delta)

    def increment_delta(self, state: MapLattice, by: int = 1) -> MapLattice:
        """The δ-mutator ``incδ`` evaluated against an explicit state.

        Exposed separately so synchronizers can generate deltas against
        the state they manage.
        """
        current = state.get(self.replica)
        base = current.value if isinstance(current, MaxInt) else 0
        return MapLattice({self.replica: MaxInt(base + by)})

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def value(self) -> int:
        """``value(p) = Σ { v | k ↦ v ∈ p }``."""
        return sum(entry.value for _, entry in self.state.items())

    def entry(self, replica: Hashable) -> int:
        """The tally recorded for one replica (0 when absent)."""
        found = self.state.get(replica)
        return found.value if isinstance(found, MaxInt) else 0
