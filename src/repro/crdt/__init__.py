"""State-based CRDTs built from the lattice substrate.

Each data type couples a lattice state with mutators and their optimal
δ-mutators (Section III-B of the paper): for every mutator ``m`` the
δ-mutator returns ``mδ(x) = ∆(m(x), x)``, the least state that joined
with ``x`` produces ``m(x)``.

The types mirror the paper's catalogue:

* :class:`~repro.crdt.gcounter.GCounter` and
  :class:`~repro.crdt.gset.GSet` — the running examples of Figure 2;
* :class:`~repro.crdt.gmap.GMap` — the grow-only map of Table I;
* :class:`~repro.crdt.pncounter.PNCounter` — the Appendix C example;
* :class:`~repro.crdt.lwwregister.LWWRegister`,
  :class:`~repro.crdt.twopset.TwoPSet`,
  :class:`~repro.crdt.mvregister.MVRegister` — composition-construct
  show-cases (lexicographic product, cartesian product, maximals);
* :class:`~repro.crdt.bcounter.BCounter` — a non-negative counter with
  locally-checked decrement rights (numeric-invariant extension).
"""

from repro.crdt.base import Crdt, optimal_delta_mutator
from repro.crdt.bcounter import BCounter, InsufficientRights
from repro.crdt.gcounter import GCounter
from repro.crdt.gset import GSet
from repro.crdt.gmap import GMap
from repro.crdt.pncounter import PNCounter
from repro.crdt.lwwregister import LWWRegister
from repro.crdt.twopset import TwoPSet
from repro.crdt.mvregister import MVRegister

__all__ = [
    "BCounter",
    "Crdt",
    "InsufficientRights",
    "optimal_delta_mutator",
    "GCounter",
    "GSet",
    "GMap",
    "PNCounter",
    "LWWRegister",
    "TwoPSet",
    "MVRegister",
]
