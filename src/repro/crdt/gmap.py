"""Grow-only map — the ``GMap K%`` type of Table I.

A ``GMap`` binds keys to values from any lattice; join is pointwise.
The paper's micro-benchmark drives it with monotonically refreshed
values (each update inflates the value under its key), making the
GCounter "a particular case of GMap K% in which K = 100" — every key
(one per replica) is touched between synchronization rounds.

This implementation is generic over the value lattice.  For the
benchmarks we bind keys to :class:`~repro.lattice.primitives.MaxInt`
refresh counters; the Retwis application binds tweet identifiers to
immutable content registers.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.crdt.base import Crdt
from repro.lattice.base import Lattice
from repro.lattice.map_lattice import MapLattice
from repro.lattice.primitives import Chain, MaxInt


class GMap(Crdt):
    """A map whose bindings only ever inflate.

    >>> m = GMap("A")
    >>> _ = m.put("k", MaxInt(1))
    >>> _ = m.put("k", MaxInt(5))
    >>> m.get("k")
    MaxInt(5)
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: MapLattice | None = None) -> None:
        super().__init__(replica, state if state is not None else MapLattice())

    @staticmethod
    def bottom() -> MapLattice:
        """The empty map ``⊥``."""
        return MapLattice()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def put(self, key: Hashable, value: Lattice) -> MapLattice:
        """Join ``value`` into the binding for ``key``; return the delta.

        The delta is the one-entry map ``{k ↦ ∆(value, current)}`` —
        bottom when the write is already dominated.
        """
        delta = self.put_delta(self.state, key, value)
        return self.apply_delta(delta)

    def put_delta(self, state: MapLattice, key: Hashable, value: Lattice) -> MapLattice:
        """The δ-mutator for :meth:`put` against an explicit state."""
        current = state.get(key)
        if current is None:
            return MapLattice({key: value})
        novel = value.delta(current)
        if novel.is_bottom:
            return state.bottom_like()
        return MapLattice({key: novel})

    def update(self, key: Hashable, fn: Callable[[Lattice | None], Lattice]) -> MapLattice:
        """Compute a new value for ``key`` from its current binding.

        ``fn`` receives the current value (or ``None`` when unbound) and
        must return a value that inflates it; the resulting delta is
        joined in and returned.
        """
        return self.put(key, fn(self.state.get(key)))

    def bump(self, key: Hashable) -> MapLattice:
        """Increment a ``MaxInt``-valued binding — the Table I update.

        "change the value of a key" in the micro-benchmark: each refresh
        inflates the per-key counter by one, so every round produces a
        genuinely new binding to disseminate.
        """
        current = self.state.get(key)
        base = current.value if isinstance(current, MaxInt) else 0
        return self.put(key, MaxInt(base + 1))

    def put_chain(self, key: Hashable, value, bottom="") -> MapLattice:
        """Bind ``key`` to a :class:`Chain`-wrapped immutable value.

        Convenience for write-once registers such as tweet bodies in the
        Retwis workload.
        """
        return self.put(key, Chain(value, bottom=bottom))

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Lattice | None:
        """The binding for ``key`` (``None`` when unbound)."""
        return self.state.get(key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.state

    def __len__(self) -> int:
        return len(self.state)
