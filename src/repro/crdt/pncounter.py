"""Positive-negative counter — the Appendix C composition example.

``PNCounter = I ↪→ (ℕ × ℕ)``: each replica entry pairs an increment
tally with a decrement tally, composed with the cartesian product.  The
counter value is the sum of increments minus the sum of decrements.

Appendix C shows its decomposition splits each entry into separate
increment and decrement irreducibles, e.g.::

    ⇓{A ↦ ⟨2,3⟩, B ↦ ⟨5,5⟩} =
        {{A ↦ ⟨2,0⟩}, {A ↦ ⟨0,3⟩}, {B ↦ ⟨5,0⟩}, {B ↦ ⟨0,5⟩}}
"""

from __future__ import annotations

from typing import Hashable, Tuple

from repro.crdt.base import Crdt
from repro.lattice.map_lattice import MapLattice
from repro.lattice.primitives import MaxInt
from repro.lattice.product import PairLattice


def _entry(inc: int, dec: int) -> PairLattice:
    return PairLattice(MaxInt(inc), MaxInt(dec))


class PNCounter(Crdt):
    """A counter supporting increments and decrements.

    >>> c = PNCounter("A")
    >>> _ = c.increment(5); _ = c.decrement(2)
    >>> c.value
    3
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: MapLattice | None = None) -> None:
        super().__init__(replica, state if state is not None else MapLattice())

    @staticmethod
    def bottom() -> MapLattice:
        """The empty map ``⊥``."""
        return MapLattice()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def increment(self, by: int = 1) -> MapLattice:
        """Raise the local increment tally; return the optimal delta."""
        if by <= 0:
            raise ValueError(f"increment must be positive, got {by}")
        inc, dec = self._tallies(self.state)
        delta = MapLattice({self.replica: _entry(inc + by, 0)})
        return self.apply_delta(delta)

    def decrement(self, by: int = 1) -> MapLattice:
        """Raise the local decrement tally; return the optimal delta."""
        if by <= 0:
            raise ValueError(f"decrement must be positive, got {by}")
        inc, dec = self._tallies(self.state)
        delta = MapLattice({self.replica: _entry(0, dec + by)})
        return self.apply_delta(delta)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def value(self) -> int:
        """Total increments minus total decrements, over all replicas."""
        total = 0
        for _, pair in self.state.items():
            assert isinstance(pair, PairLattice)
            total += pair.first.value - pair.second.value
        return total

    def tallies(self, replica: Hashable) -> Tuple[int, int]:
        """The ``(increments, decrements)`` recorded for a replica."""
        found = self.state.get(replica)
        if not isinstance(found, PairLattice):
            return (0, 0)
        return (found.first.value, found.second.value)

    def _tallies(self, state: MapLattice) -> Tuple[int, int]:
        found = state.get(self.replica)
        if not isinstance(found, PairLattice):
            return (0, 0)
        return (found.first.value, found.second.value)
