"""Bounded counter — a PNCounter that can never go negative.

``BCounter`` (after Balegas et al., *Extending Eventually Consistent
Cloud Databases for Enforcing Numeric Invariants*, SRDS 2015) enforces
the global invariant ``value ≥ 0`` without coordination: each replica
may only decrement against *rights* it locally owns, and rights can be
transferred between replicas ahead of demand.  Increments mint rights
for the incrementing replica.

The state composes the library's lattice constructs —

    BCounter = (I ↪→ (ℕ × ℕ))  ×  ((I × I) ↪→ ℕ)

a PNCounter body plus a grow-only transfer matrix ``T`` where
``T(i, j)`` accumulates the rights ``i`` has ceded to ``j``.  The local
rights of replica ``i`` are::

    rights(i) = inc(i) − dec(i) + Σⱼ T(j, i) − Σⱼ T(i, j)

Every mutator checks the rights invariant before producing a delta, and
every delta is optimal (one map entry), so the type drops into any of
the library's synchronizers.  This is the ``bcounter`` extension listed
in DESIGN.md §3.2; the single-writer discipline per map entry is the
same one Appendix B of the paper invokes for lexicographic counters.
"""

from __future__ import annotations

from typing import Hashable, Tuple

from repro.crdt.base import Crdt
from repro.lattice.map_lattice import MapLattice
from repro.lattice.primitives import MaxInt
from repro.lattice.product import PairLattice


def _body_entry(inc: int, dec: int) -> PairLattice:
    return PairLattice(MaxInt(inc), MaxInt(dec))


class InsufficientRights(ValueError):
    """Raised when a decrement or transfer exceeds the local rights."""


class BCounter(Crdt):
    """A non-negative counter with locally-checked decrement rights.

    >>> a, b = BCounter("A"), BCounter("B")
    >>> _ = a.increment(10)
    >>> _ = a.transfer(4, to="B")
    >>> b.merge(a)
    >>> _ = b.decrement(3)
    >>> b.merge(a); a.merge(b)
    >>> a.value
    7
    >>> a.rights, b.rights
    (6, 1)
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: PairLattice | None = None) -> None:
        super().__init__(replica, state if state is not None else BCounter.bottom())

    @staticmethod
    def bottom() -> PairLattice:
        """An empty PNCounter body paired with an empty transfer matrix."""
        return PairLattice(MapLattice(), MapLattice())

    # ------------------------------------------------------------------
    # Mutators (all return optimal deltas).
    # ------------------------------------------------------------------

    def increment(self, by: int = 1) -> PairLattice:
        """Add ``by`` to the counter, minting ``by`` local rights."""
        if by <= 0:
            raise ValueError(f"increment must be positive, got {by}")
        inc, _ = self._tallies()
        delta = PairLattice(
            MapLattice({self.replica: _body_entry(inc + by, 0)}),
            self._matrix().bottom_like(),
        )
        return self.apply_delta(delta)

    def decrement(self, by: int = 1) -> PairLattice:
        """Subtract ``by``, if this replica owns enough rights.

        Raises :class:`InsufficientRights` otherwise — the caller must
        either :meth:`transfer` rights in from elsewhere or give up;
        that local refusal is exactly what keeps the global value
        non-negative with no coordination.
        """
        if by <= 0:
            raise ValueError(f"decrement must be positive, got {by}")
        available = self.rights
        if by > available:
            raise InsufficientRights(
                f"replica {self.replica!r} holds {available} rights, needs {by}"
            )
        _, dec = self._tallies()
        delta = PairLattice(
            MapLattice({self.replica: _body_entry(0, dec + by)}),
            self._matrix().bottom_like(),
        )
        return self.apply_delta(delta)

    def transfer(self, amount: int, to: Hashable) -> PairLattice:
        """Cede ``amount`` local rights to replica ``to``.

        The transfer is an entry in the grow-only matrix, so it commutes
        with every other operation; the recipient can spend the rights
        as soon as the delta reaches it.
        """
        if amount <= 0:
            raise ValueError(f"transfer must be positive, got {amount}")
        if to == self.replica:
            raise ValueError("cannot transfer rights to oneself")
        available = self.rights
        if amount > available:
            raise InsufficientRights(
                f"replica {self.replica!r} holds {available} rights, needs {amount}"
            )
        ceded = self._ceded(self.replica, to)
        delta = PairLattice(
            self._body().bottom_like(),
            MapLattice({(self.replica, to): MaxInt(ceded + amount)}),
        )
        return self.apply_delta(delta)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def value(self) -> int:
        """Total increments minus total decrements (never negative)."""
        total = 0
        for _, pair in self._body().items():
            assert isinstance(pair, PairLattice)
            total += pair.first.value - pair.second.value
        return total

    @property
    def rights(self) -> int:
        """Decrement rights currently owned by the local replica."""
        return self.rights_of(self.replica)

    def rights_of(self, replica: Hashable) -> int:
        """Rights owned by ``replica`` under the local view of the state.

        Monotone reasoning makes the local check safe: increments and
        inbound transfers only ever raise another replica's true rights
        above our view, while the components that lower them (its own
        decrements and outbound transfers) are written only by that
        replica itself.
        """
        entry = self._body().get(replica)
        inc = entry.first.value if isinstance(entry, PairLattice) else 0
        dec = entry.second.value if isinstance(entry, PairLattice) else 0
        inbound = outbound = 0
        for (src, dst), ceded in self._matrix().items():
            assert isinstance(ceded, MaxInt)
            if dst == replica:
                inbound += ceded.value
            if src == replica:
                outbound += ceded.value
        return inc - dec + inbound - outbound

    # ------------------------------------------------------------------
    # State access helpers.
    # ------------------------------------------------------------------

    def _body(self) -> MapLattice:
        assert isinstance(self.state, PairLattice)
        return self.state.first

    def _matrix(self) -> MapLattice:
        assert isinstance(self.state, PairLattice)
        return self.state.second

    def _tallies(self) -> Tuple[int, int]:
        entry = self._body().get(self.replica)
        if not isinstance(entry, PairLattice):
            return (0, 0)
        return (entry.first.value, entry.second.value)

    def _ceded(self, src: Hashable, dst: Hashable) -> int:
        entry = self._matrix().get((src, dst))
        return entry.value if isinstance(entry, MaxInt) else 0
