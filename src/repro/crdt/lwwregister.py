"""Last-writer-wins register over a lexicographic pair.

Appendix B motivates the lexicographic product's typical CRDT use: a
chain-valued version as first component lets an actor overwrite the
second component arbitrarily while keeping the state an inflation (the
single-writer principle, as in Cassandra counters).  The LWW register
instantiates that pattern with a timestamp chain and a value chain:
higher timestamp wins outright; equal timestamps fall back to the value
order, giving a deterministic total tiebreak.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.crdt.base import Crdt
from repro.lattice.lexicographic import LexPair
from repro.lattice.primitives import Chain, MaxInt


class LWWRegister(Crdt):
    """A register whose most recent write (by timestamp) wins.

    >>> r = LWWRegister("A")
    >>> _ = r.write("first", timestamp=1)
    >>> _ = r.write("second", timestamp=2)
    >>> r.value
    'second'
    """

    __slots__ = ("_value_bottom",)

    def __init__(
        self,
        replica: Hashable,
        state: LexPair | None = None,
        value_bottom: Any = "",
    ) -> None:
        self._value_bottom = value_bottom
        if state is None:
            state = LexPair(MaxInt(0), Chain(value_bottom, bottom=value_bottom))
        super().__init__(replica, state)

    def bottom(self) -> LexPair:
        """The unwritten register: version 0, bottom value."""
        return LexPair(MaxInt(0), Chain(self._value_bottom, bottom=self._value_bottom))

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def write(self, value: Any, timestamp: int | None = None) -> LexPair:
        """Write ``value``, bumping the version chain; return the delta.

        When ``timestamp`` is omitted the current version plus one is
        used, which guarantees the write is visible locally.  Writes
        with stale timestamps lose against the current state and yield
        a bottom delta.
        """
        assert isinstance(self.state, LexPair)
        current_version = self.state.first
        assert isinstance(current_version, MaxInt)
        version = timestamp if timestamp is not None else current_version.value + 1
        candidate = LexPair(MaxInt(version), Chain(value, bottom=self._value_bottom))
        delta = candidate.delta(self.state)
        return self.apply_delta(delta)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def value(self) -> Any:
        """The winning write's value."""
        assert isinstance(self.state, LexPair)
        chain = self.state.second
        assert isinstance(chain, Chain)
        return chain.value

    @property
    def timestamp(self) -> int:
        """The winning write's timestamp."""
        assert isinstance(self.state, LexPair)
        version = self.state.first
        assert isinstance(version, MaxInt)
        return version.value
