"""Two-phase set: a cartesian product of two grow-only sets.

A classic CRDT composition example: the first component accumulates
additions, the second accumulates removals (tombstones), and membership
is "added and not removed".  A removed element can never be re-added —
the removal tombstone dominates forever — which is precisely the
product lattice's semantics.
"""

from __future__ import annotations

from typing import AbstractSet, Hashable

from repro.crdt.base import Crdt
from repro.lattice.product import PairLattice
from repro.lattice.set_lattice import SetLattice


def _bottom() -> PairLattice:
    return PairLattice(SetLattice(), SetLattice())


class TwoPSet(Crdt):
    """A set with permanent removals.

    >>> s = TwoPSet("A")
    >>> _ = s.add("x"); _ = s.add("y"); _ = s.remove("x")
    >>> sorted(s.value)
    ['y']
    >>> "x" in s
    False
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: PairLattice | None = None) -> None:
        super().__init__(replica, state if state is not None else _bottom())

    @staticmethod
    def bottom() -> PairLattice:
        """Two empty sets."""
        return _bottom()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def add(self, element: Hashable) -> PairLattice:
        """Add ``element``; bottom delta if already added."""
        assert isinstance(self.state, PairLattice)
        adds = self.state.first
        assert isinstance(adds, SetLattice)
        if element in adds:
            delta = self.state.bottom_like()
        else:
            delta = PairLattice(SetLattice((element,)), SetLattice())
        return self.apply_delta(delta)

    def remove(self, element: Hashable) -> PairLattice:
        """Tombstone ``element``; requires it to have been added.

        Removing a never-added element raises: 2P-set semantics only
        allow removing observed elements.
        """
        assert isinstance(self.state, PairLattice)
        adds, removes = self.state.first, self.state.second
        assert isinstance(adds, SetLattice) and isinstance(removes, SetLattice)
        if element not in adds:
            raise KeyError(f"cannot remove {element!r}: never added")
        if element in removes:
            delta = self.state.bottom_like()
        else:
            delta = PairLattice(SetLattice(), SetLattice((element,)))
        return self.apply_delta(delta)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def value(self) -> AbstractSet[Hashable]:
        """Added elements that are not tombstoned."""
        assert isinstance(self.state, PairLattice)
        adds, removes = self.state.first, self.state.second
        assert isinstance(adds, SetLattice) and isinstance(removes, SetLattice)
        return adds.elements - removes.elements

    def __contains__(self, element: Hashable) -> bool:
        return element in self.value

    def __len__(self) -> int:
        return len(self.value)
