"""Sets of maximal elements ``M(P)`` of a partial order.

``M(P)`` is the lattice of *antichains* of a partial order ``P``: sets
in which no element dominates another.  The join of two antichains is
the set of maximal elements of their union — dominated elements are
absorbed.  This construct underlies the multi-value register, where the
partial order is "version vector dominance" over tagged writes: a write
survives in the antichain until some causally later write dominates it.

Following Appendix C, the decomposition is ``⇓s = {{e} | e ∈ s}`` —
singleton antichains are the join-irreducibles.

The partial order over elements is supplied as a callable
``dominates(x, y)`` meaning ``y ⊑ x`` in ``P`` (``x`` absorbs ``y``).
It must be reflexive and transitive; equal elements are deduplicated by
hash as usual for Python sets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Iterator

from repro.lattice.base import Lattice

if TYPE_CHECKING:  # pragma: no cover
    from repro.sizes import SizeModel

Dominates = Callable[[Hashable, Hashable], bool]


def _maximals(elements: Iterable[Hashable], dominates: Dominates) -> frozenset:
    """Return the maximal elements of ``elements`` under ``dominates``."""
    pool = list(dict.fromkeys(elements))
    keep: list[Hashable] = []
    for candidate in pool:
        dominated = False
        for other in pool:
            if other is not candidate and other != candidate and dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            keep.append(candidate)
    return frozenset(keep)


class MaxElements(Lattice):
    """An immutable antichain in ``M(P)`` with maximal-union join.

    >>> divides = lambda x, y: x % y == 0   # y ⊑ x when y divides x
    >>> a = MaxElements({4}, dominates=divides)
    >>> b = MaxElements({2, 3}, dominates=divides)
    >>> sorted(a.join(b).elements)
    [3, 4]
    """

    __slots__ = ("elements", "dominates")

    def __init__(self, elements: Iterable[Hashable] = (), *, dominates: Dominates) -> None:
        object.__setattr__(self, "dominates", dominates)
        object.__setattr__(self, "elements", _maximals(elements, dominates))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    # ------------------------------------------------------------------
    # Lattice protocol.
    # ------------------------------------------------------------------

    def join(self, other: "MaxElements") -> "MaxElements":
        if not other.elements:
            return self
        if not self.elements:
            return other
        return MaxElements(self.elements | other.elements, dominates=self.dominates)

    def leq(self, other: "MaxElements") -> bool:
        # s ⊑ s' iff every element of s is dominated by some element of s'.
        for element in self.elements:
            if not any(self.dominates(candidate, element) for candidate in other.elements):
                return False
        return True

    def bottom_like(self) -> "MaxElements":
        return MaxElements((), dominates=self.dominates)

    @property
    def is_bottom(self) -> bool:
        return not self.elements

    def decompose(self) -> Iterator["MaxElements"]:
        for element in self.elements:
            yield MaxElements((element,), dominates=self.dominates)

    def delta(self, other: "MaxElements") -> "MaxElements":
        missing = [
            element
            for element in self.elements
            if not any(self.dominates(candidate, element) for candidate in other.elements)
        ]
        return MaxElements(missing, dominates=self.dominates)

    def size_units(self) -> int:
        return len(self.elements)

    def size_bytes(self, model: "SizeModel") -> int:
        return sum(model.sizeof(element) for element in self.elements)

    def __contains__(self, element: Hashable) -> bool:
        return element in self.elements

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MaxElements) and self.elements == other.elements

    def __hash__(self) -> int:
        return hash((MaxElements, self.elements))

    def __repr__(self) -> str:
        inner = ", ".join(repr(e) for e in sorted(self.elements, key=repr))
        return f"MaxElements({{{inner}}})"
