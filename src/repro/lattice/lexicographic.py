"""Lexicographic product ``C ⋉ A`` with a chain as first component.

The lexicographic product orders pairs by their first component and
falls back to the second only on ties::

    ⟨c, a⟩ ⊑ ⟨c', a'⟩  ⇔  c ⊏ c'  ∨  (c = c' ∧ a ⊑ a')

As Appendix B of the paper explains, the product is distributive —
and therefore enjoys unique irredundant decompositions — only when the
first component is a *chain* (total order).  That restriction matches
the construct's typical CRDT use under the single-writer principle: a
version number owned by one actor guards an arbitrarily-overwritable
payload, as in Cassandra counters and last-writer-wins registers.  This
implementation therefore requires the first component to be a chain-like
lattice (one whose ``leq`` is total); tests enforce it with the
primitives from :mod:`repro.lattice.primitives`.

Decomposition follows Appendix C (``⇓⟨c, a⟩ = ⇓c × ⇓a``) with the two
boundary cases the rule leaves implicit:

* ``⟨⊥, a⟩`` decomposes through ``a`` only: ``{⟨⊥, x⟩ | x ∈ ⇓a}``;
* ``⟨c, ⊥⟩`` with ``c ≠ ⊥`` is itself join-irreducible (no pair strictly
  below it joins back up to it), so it decomposes to itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lattice.base import Lattice

if TYPE_CHECKING:  # pragma: no cover
    from repro.sizes import SizeModel


class LexPair(Lattice):
    """An immutable lexicographic pair ``⟨version-chain, payload⟩``.

    >>> low = LexPair(MaxInt(1), SetLattice({"x"}))
    >>> high = LexPair(MaxInt(2), SetLattice({"y"}))
    >>> low.join(high) == high   # higher version wins outright
    True
    """

    __slots__ = ("first", "second")

    def __init__(self, first: Lattice, second: Lattice) -> None:
        object.__setattr__(self, "first", first)
        object.__setattr__(self, "second", second)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    # ------------------------------------------------------------------
    # Lattice protocol.
    # ------------------------------------------------------------------

    def join(self, other: "LexPair") -> "LexPair":
        if self.first == other.first:
            return LexPair(self.first, self.second.join(other.second))
        if self.first.leq(other.first):
            return other
        if other.first.leq(self.first):
            return self
        raise ValueError(
            "LexPair requires a totally ordered first component; "
            f"{self.first!r} and {other.first!r} are incomparable"
        )

    def leq(self, other: "LexPair") -> bool:
        if self.first == other.first:
            return self.second.leq(other.second)
        return self.first.leq(other.first)

    def bottom_like(self) -> "LexPair":
        return LexPair(self.first.bottom_like(), self.second.bottom_like())

    @property
    def is_bottom(self) -> bool:
        return self.first.is_bottom and self.second.is_bottom

    def decompose(self) -> Iterator["LexPair"]:
        if self.second.is_bottom:
            if not self.first.is_bottom:
                yield self
            return
        for irreducible in self.second.decompose():
            yield LexPair(self.first, irreducible)

    def delta(self, other: "LexPair") -> "LexPair":
        if self.first == other.first:
            second_delta = self.second.delta(other.second)
            if second_delta.is_bottom:
                return self.bottom_like()
            return LexPair(self.first, second_delta)
        if self.first.leq(other.first):
            # Every irreducible ⟨c, x⟩ of self sits below other already.
            return self.bottom_like()
        # self.first strictly above: nothing of self is below other.
        return self

    def size_units(self) -> int:
        if self.second.is_bottom:
            return 0 if self.first.is_bottom else 1
        return self.second.size_units()

    def size_bytes(self, model: "SizeModel") -> int:
        if self.is_bottom:
            return 0
        return self.first.size_bytes(model) + self.second.size_bytes(model)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LexPair)
            and self.first == other.first
            and self.second == other.second
        )

    def __hash__(self) -> int:
        return hash((LexPair, self.first, self.second))

    def __repr__(self) -> str:
        return f"LexPair({self.first!r}, {self.second!r})"
