"""Linear sum ``A ⊕ B``: every element of ``A`` below every element of ``B``.

The linear sum stacks lattice ``B`` on top of lattice ``A``.  It models
one-way phase transitions: a value starts in the ``A`` phase and can be
irrevocably promoted into the ``B`` phase (for example, a tombstone
lattice where any live value is overridden by "deleted").

Following the notation of Appendix B (Table IV footnote), instances are
tagged pairs — ``Left a`` or ``Right b``.  The bottom of ``A ⊕ B`` is
``Left ⊥_A``.  A ``Right`` value needs to know ``⊥_A`` to answer
``bottom_like``; the constructor therefore records it.

Decomposition (Appendix C) maps each side's irreducibles through the
tag.  The single boundary case is ``Right ⊥_B``, which is itself
join-irreducible — no finite join of ``Left`` values can cross into the
``Right`` phase — so it decomposes to itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lattice.base import Lattice

if TYPE_CHECKING:  # pragma: no cover
    from repro.sizes import SizeModel

LEFT = "Left"
RIGHT = "Right"


class LinearSum(Lattice):
    """A tagged value in the linear-sum lattice ``A ⊕ B``.

    Use the constructors :meth:`left` and :meth:`right`:

    >>> lo = LinearSum.left(MaxInt(3))
    >>> hi = LinearSum.right(Bool(False), left_bottom=MaxInt(0))
    >>> lo.leq(hi)   # any Left is below any Right
    True
    """

    __slots__ = ("tag", "value", "left_bottom")

    def __init__(self, tag: str, value: Lattice, left_bottom: Lattice) -> None:
        if tag not in (LEFT, RIGHT):
            raise ValueError(f"tag must be {LEFT!r} or {RIGHT!r}, got {tag!r}")
        object.__setattr__(self, "tag", tag)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "left_bottom", left_bottom)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    @classmethod
    def left(cls, value: Lattice) -> "LinearSum":
        """Wrap a value of the lower lattice ``A``."""
        return cls(LEFT, value, value.bottom_like())

    @classmethod
    def right(cls, value: Lattice, left_bottom: Lattice) -> "LinearSum":
        """Wrap a value of the upper lattice ``B``.

        ``left_bottom`` is ``⊥_A``, needed so the value can still report
        the bottom of the sum lattice.
        """
        return cls(RIGHT, value, left_bottom)

    # ------------------------------------------------------------------
    # Lattice protocol.
    # ------------------------------------------------------------------

    def join(self, other: "LinearSum") -> "LinearSum":
        if self.tag == other.tag:
            return LinearSum(self.tag, self.value.join(other.value), self.left_bottom)
        return self if self.tag == RIGHT else other

    def leq(self, other: "LinearSum") -> bool:
        if self.tag == other.tag:
            return self.value.leq(other.value)
        return self.tag == LEFT

    def bottom_like(self) -> "LinearSum":
        return LinearSum(LEFT, self.left_bottom, self.left_bottom)

    @property
    def is_bottom(self) -> bool:
        return self.tag == LEFT and self.value.is_bottom

    def decompose(self) -> Iterator["LinearSum"]:
        if self.tag == RIGHT and self.value.is_bottom:
            yield self
            return
        for irreducible in self.value.decompose():
            yield LinearSum(self.tag, irreducible, self.left_bottom)

    def delta(self, other: "LinearSum") -> "LinearSum":
        if self.tag == LEFT and other.tag == RIGHT:
            # Everything in self is below other.
            return self.bottom_like()
        if self.tag == RIGHT and other.tag == LEFT:
            # No Right irreducible is below a Left value, not even Right ⊥_B.
            return self
        inner = self.value.delta(other.value)
        if inner.is_bottom:
            return self.bottom_like()
        return LinearSum(self.tag, inner, self.left_bottom)

    def size_units(self) -> int:
        if self.tag == RIGHT and self.value.is_bottom:
            return 1
        return self.value.size_units()

    def size_bytes(self, model: "SizeModel") -> int:
        if self.is_bottom:
            return 0
        return model.tag_bytes + self.value.size_bytes(model)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinearSum)
            and self.tag == other.tag
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((LinearSum, self.tag, self.value))

    def __repr__(self) -> str:
        return f"LinearSum.{self.tag.lower()}({self.value!r})"
