"""The powerset lattice ``P(U)`` with set-union join.

This is the lattice of the grow-only set (Figure 2b of the paper).  Its
join-irreducibles are exactly the singletons, so the decomposition rule
of Appendix C is ``⇓s = {{e} | e ∈ s}`` and the optimal delta is plain
set difference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, AbstractSet, Hashable, Iterable, Iterator

from repro.lattice.base import Lattice

if TYPE_CHECKING:  # pragma: no cover
    from repro.sizes import SizeModel


class SetLattice(Lattice):
    """An immutable set under union, ``(P(U), ⊆, ∪)``.

    >>> SetLattice({"a"}).join(SetLattice({"b"})) == SetLattice({"a", "b"})
    True
    >>> sorted(min(x.elements) for x in SetLattice({"a", "b"}).decompose())
    ['a', 'b']
    """

    __slots__ = ("elements", "_bytes_cache")

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        object.__setattr__(self, "elements", frozenset(elements))
        object.__setattr__(self, "_bytes_cache", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    # ------------------------------------------------------------------
    # Lattice protocol.
    # ------------------------------------------------------------------

    def join(self, other: "SetLattice") -> "SetLattice":
        if not other.elements:
            return self
        if not self.elements:
            return other
        return SetLattice(self.elements | other.elements)

    def leq(self, other: "SetLattice") -> bool:
        return self.elements <= other.elements

    def bottom_like(self) -> "SetLattice":
        return _EMPTY

    @property
    def is_bottom(self) -> bool:
        return not self.elements

    def decompose(self) -> Iterator["SetLattice"]:
        for element in self.elements:
            yield SetLattice((element,))

    def delta(self, other: "SetLattice") -> "SetLattice":
        missing = self.elements - other.elements
        return SetLattice(missing) if missing else _EMPTY

    def size_units(self) -> int:
        return len(self.elements)

    def size_bytes(self, model: "SizeModel") -> int:
        cached = self._bytes_cache
        if cached is None or cached[0] is not model:
            cached = (model, sum(model.sizeof(element) for element in self.elements))
            # repro: lint-ok[frozen-mutation] sanctioned memo: byte size is a pure function of (frozen elements, model)
            object.__setattr__(self, "_bytes_cache", cached)
        return cached[1]

    # ------------------------------------------------------------------
    # Set conveniences.
    # ------------------------------------------------------------------

    def add(self, element: Hashable) -> "SetLattice":
        """Return a new set with ``element`` added (the ``add`` mutator)."""
        if element in self.elements:
            return self
        return SetLattice(self.elements | {element})

    def __contains__(self, element: Hashable) -> bool:
        return element in self.elements

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def value(self) -> AbstractSet[Hashable]:
        """The query function of the GSet: the set of elements."""
        return self.elements

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetLattice) and self.elements == other.elements

    def __hash__(self) -> int:
        return hash((SetLattice, self.elements))

    def __repr__(self) -> str:
        inner = ", ".join(repr(e) for e in sorted(self.elements, key=repr))
        return f"SetLattice({{{inner}}})"


_EMPTY = SetLattice()
