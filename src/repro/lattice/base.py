"""Base protocol for join-semilattice values.

A state-based CRDT is a triple ``(L, ⊑, ⊔)`` where ``L`` is a
join-semilattice, ``⊑`` a partial order, and ``⊔`` a binary join that
computes the least upper bound of any two elements (paper, Section II).
The partial order never needs to be defined independently because it is
recoverable from the join::

    x ⊑ y  ⇔  x ⊔ y = y

Every lattice in this library is a *bounded* join-semilattice — it has a
bottom element ``⊥`` — and, with the lexicographic-product caveat spelled
out in Appendix B of the paper, is a distributive lattice satisfying the
descending chain condition.  Those two properties guarantee that every
state has a *unique irredundant join decomposition* (Proposition 1),
which is what makes the optimal deltas of Section III well defined.

Values are immutable: every operation returns a new value.  This makes
them safe to alias from delta buffers, message payloads, and replica
states simultaneously, which the network simulator relies on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Iterator, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sizes import SizeModel

L = TypeVar("L", bound="Lattice")


class Lattice(ABC):
    """Abstract base class for immutable join-semilattice values.

    Subclasses must implement :meth:`join`, :meth:`bottom_like`,
    :meth:`is_bottom`, :meth:`decompose`, :meth:`size_units` and
    :meth:`size_bytes`, plus value-based ``__eq__`` / ``__hash__``.

    Two derived operations are provided for free and may be overridden
    with faster type-specific implementations:

    * :meth:`leq` — the partial order ``⊑`` derived from the join;
    * :meth:`delta` — the optimal delta ``∆(self, other)`` of Section III,
      derived from the join decomposition.
    """

    __slots__ = ()

    # ------------------------------------------------------------------
    # Core lattice structure.
    # ------------------------------------------------------------------

    @abstractmethod
    def join(self: L, other: L) -> L:
        """Return the least upper bound ``self ⊔ other``."""

    @abstractmethod
    def bottom_like(self: L) -> L:
        """Return the bottom element ``⊥`` of this value's lattice.

        The bottom is requested from an instance rather than from the
        class because parameterized lattices (pairs, lexicographic pairs,
        linear sums) need component information that only an instance
        carries.
        """

    @property
    @abstractmethod
    def is_bottom(self) -> bool:
        """True if this value is the bottom element ``⊥``."""

    def leq(self: L, other: L) -> bool:
        """The partial order ``self ⊑ other``, derived as ``x ⊔ y = y``.

        Subclasses override this with a direct comparison when one is
        cheaper than materializing the join.
        """
        return self.join(other) == other

    def lt(self: L, other: L) -> bool:
        """Strict order ``self ⊏ other``."""
        return self != other and self.leq(other)

    # ------------------------------------------------------------------
    # Join decompositions and optimal deltas (paper, Section III).
    # ------------------------------------------------------------------

    @abstractmethod
    def decompose(self: L) -> Iterator[L]:
        """Yield the unique irredundant join decomposition ``⇓self``.

        Every yielded value is join-irreducible, the join of all yielded
        values equals ``self``, and no yielded value is below the join of
        the others.  Bottom decomposes into the empty iterator (it is the
        join over the empty set and is never join-irreducible).

        The decomposition rules per lattice construct follow Appendix C
        of the paper.
        """

    def delta(self: L, other: L) -> L:
        """Return the optimal delta ``∆(self, other)`` (Definition in §III-B).

        The result is the join of the join-irreducibles of ``self`` that
        are not already below ``other``::

            ∆(a, b) = ⊔ { y ∈ ⇓a | y ⋢ b }

        It satisfies ``∆(a, b) ⊔ b = a ⊔ b`` and is the least value doing
        so: any ``c`` with ``c ⊔ b = a ⊔ b`` has ``∆(a, b) ⊑ c``.

        Subclasses override this with structurally recursive versions
        that avoid materializing singleton irreducibles.
        """
        acc = self.bottom_like()
        for irreducible in self.decompose():
            if not irreducible.leq(other):
                acc = acc.join(irreducible)
        return acc

    # ------------------------------------------------------------------
    # Size accounting used by the evaluation harness.
    # ------------------------------------------------------------------

    @abstractmethod
    def size_units(self) -> int:
        """Size in the paper's transmission metric (Table I).

        The unit count equals the number of join-irreducibles in the
        decomposition: map entries for ``GCounter``/``GMap``, set elements
        for ``GSet``.  Efficient overrides avoid walking the
        decomposition.
        """

    @abstractmethod
    def size_bytes(self, model: "SizeModel") -> int:
        """Approximate serialized payload size under a byte-size model.

        Used by the Retwis evaluation (Section V-C), where tweet
        identifiers and bodies have realistic byte sizes.
        """

    # ------------------------------------------------------------------
    # Convenience.
    # ------------------------------------------------------------------

    def inflates(self: L, other: L) -> bool:
        """True if joining ``self`` into ``other`` strictly inflates it.

        This is the (insufficient) redundancy check of classic delta-based
        synchronization — Algorithm 1, line 16 of the paper.
        """
        return not self.leq(other)

    def __repr__(self) -> str:  # pragma: no cover - overridden by subclasses
        return f"{type(self).__name__}()"


def join_all(values: Iterable[L], bottom: L) -> L:
    """Join an iterable of lattice values, starting from ``bottom``.

    ``join_all([], bottom)`` is ``bottom``, matching the convention that
    the join over the empty set is ``⊥``.
    """
    acc = bottom
    for value in values:
        acc = acc.join(value)
    return acc
