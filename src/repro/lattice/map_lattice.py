"""Finite functions ``U ↪→ L``: maps from keys to a value lattice.

This construct builds the grow-only counter (``I ↪→ MaxInt``), the
grow-only map of Table I, the PNCounter (``I ↪→ MaxInt × MaxInt``), and
— in the network simulator — the whole replicated store of a node
(object identifier ↪→ object state).

Join is pointwise; a key absent from the map is implicitly bound to the
value lattice's bottom.  Following Appendix C, the decomposition is

    ⇓f = { {k ↦ v} | k ∈ dom(f), v ∈ ⇓f(k) }

and the optimal delta recurses per key, dropping keys whose delta is
bottom.  Bottom-valued bindings are never stored, so two maps are equal
exactly when their stored bindings are equal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterator, Mapping, Tuple

from repro.lattice.base import Lattice

if TYPE_CHECKING:  # pragma: no cover
    from repro.sizes import SizeModel


class MapLattice(Lattice):
    """An immutable map with pointwise lattice join, ``(U ↪→ L, ⊑, ⊔)``.

    >>> from repro.lattice.primitives import MaxInt
    >>> a = MapLattice({"A": MaxInt(2)})
    >>> b = MapLattice({"A": MaxInt(1), "B": MaxInt(3)})
    >>> a.join(b) == MapLattice({"A": MaxInt(2), "B": MaxInt(3)})
    True

    The constructor silently drops bottom-valued bindings to maintain the
    canonical-form invariant.
    """

    __slots__ = ("entries", "_units_cache", "_bytes_cache")

    def __init__(self, entries: Mapping[Hashable, Lattice] | None = None) -> None:
        if entries:
            cleaned = {k: v for k, v in entries.items() if not v.is_bottom}
        else:
            cleaned = {}
        object.__setattr__(self, "entries", cleaned)
        object.__setattr__(self, "_units_cache", None)
        object.__setattr__(self, "_bytes_cache", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    # ------------------------------------------------------------------
    # Lattice protocol.
    # ------------------------------------------------------------------

    def join(self, other: "MapLattice") -> "MapLattice":
        if not other.entries:
            return self
        if not self.entries:
            return other
        merged = dict(self.entries)
        for key, value in other.entries.items():
            mine = merged.get(key)
            merged[key] = value if mine is None else mine.join(value)
        result = MapLattice.__new__(MapLattice)
        object.__setattr__(result, "entries", merged)
        object.__setattr__(result, "_units_cache", None)
        object.__setattr__(result, "_bytes_cache", None)
        return result

    def leq(self, other: "MapLattice") -> bool:
        if len(self.entries) > len(other.entries):
            return False
        for key, value in self.entries.items():
            theirs = other.entries.get(key)
            if theirs is None or not value.leq(theirs):
                return False
        return True

    def bottom_like(self) -> "MapLattice":
        return _EMPTY

    @property
    def is_bottom(self) -> bool:
        return not self.entries

    def decompose(self) -> Iterator["MapLattice"]:
        for key, value in self.entries.items():
            for irreducible in value.decompose():
                yield MapLattice({key: irreducible})

    def delta(self, other: "MapLattice") -> "MapLattice":
        out: dict[Hashable, Lattice] = {}
        for key, value in self.entries.items():
            theirs = other.entries.get(key)
            if theirs is None:
                out[key] = value
            else:
                diff = value.delta(theirs)
                if not diff.is_bottom:
                    out[key] = diff
        if not out:
            return _EMPTY
        result = MapLattice.__new__(MapLattice)
        object.__setattr__(result, "entries", out)
        object.__setattr__(result, "_units_cache", None)
        object.__setattr__(result, "_bytes_cache", None)
        return result

    def size_units(self) -> int:
        # Values are immutable, so the count is computed at most once.
        cached = self._units_cache
        if cached is None:
            cached = sum(value.size_units() for value in self.entries.values())
            # repro: lint-ok[frozen-mutation] sanctioned memo: unit count is a pure function of the frozen entries
            object.__setattr__(self, "_units_cache", cached)
        return cached

    def size_bytes(self, model: "SizeModel") -> int:
        # Memoized per (instance, model); experiments use one model.
        cached = self._bytes_cache
        if cached is not None and cached[0] is model:
            return cached[1]
        total = 0
        for key, value in self.entries.items():
            total += model.sizeof(key) + value.size_bytes(model)
        # repro: lint-ok[frozen-mutation] sanctioned memo: byte size is a pure function of (frozen entries, model)
        object.__setattr__(self, "_bytes_cache", (model, total))
        return total

    # ------------------------------------------------------------------
    # Map conveniences.
    # ------------------------------------------------------------------

    def get(self, key: Hashable, default: Lattice | None = None) -> Lattice | None:
        """Return the binding for ``key`` or ``default`` when absent."""
        return self.entries.get(key, default)

    def with_entry(self, key: Hashable, value: Lattice) -> "MapLattice":
        """Return a copy with ``key`` bound to ``value`` (``p{k ↦ v}``)."""
        if value.is_bottom:
            if key not in self.entries:
                return self
            remaining = dict(self.entries)
            del remaining[key]
            return MapLattice(remaining)
        updated = dict(self.entries)
        updated[key] = value
        result = MapLattice.__new__(MapLattice)
        object.__setattr__(result, "entries", updated)
        object.__setattr__(result, "_units_cache", None)
        object.__setattr__(result, "_bytes_cache", None)
        return result

    def keys(self) -> Iterator[Hashable]:
        return iter(self.entries.keys())

    def items(self) -> Iterator[Tuple[Hashable, Lattice]]:
        return iter(self.entries.items())

    def __contains__(self, key: Hashable) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MapLattice) and self.entries == other.entries

    def __hash__(self) -> int:
        return hash((MapLattice, frozenset(self.entries.items())))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{key!r}: {value!r}" for key, value in sorted(self.entries.items(), key=lambda kv: repr(kv[0]))
        )
        return f"MapLattice({{{inner}}})"


_EMPTY = MapLattice()
