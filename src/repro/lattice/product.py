"""Cartesian product ``A × B`` with componentwise join.

The product composes two lattices independently: both the order and the
join act per component.  The PNCounter uses it to pair increment and
decrement counts (Appendix C), and the 2P-Set pairs an add-set with a
remove-set.

Following Appendix C, the decomposition embeds each component's
irreducibles with the other component at bottom::

    ⇓⟨a, b⟩ = (⇓a × {⊥}) ∪ ({⊥} × ⇓b)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lattice.base import Lattice

if TYPE_CHECKING:  # pragma: no cover
    from repro.sizes import SizeModel


class PairLattice(Lattice):
    """An immutable pair of lattice values joined componentwise.

    >>> p = PairLattice(MaxInt(2), MaxInt(3))
    >>> q = PairLattice(MaxInt(5), MaxInt(1))
    >>> p.join(q) == PairLattice(MaxInt(5), MaxInt(3))
    True
    """

    __slots__ = ("first", "second")

    def __init__(self, first: Lattice, second: Lattice) -> None:
        object.__setattr__(self, "first", first)
        object.__setattr__(self, "second", second)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    # ------------------------------------------------------------------
    # Lattice protocol.
    # ------------------------------------------------------------------

    def join(self, other: "PairLattice") -> "PairLattice":
        return PairLattice(self.first.join(other.first), self.second.join(other.second))

    def leq(self, other: "PairLattice") -> bool:
        return self.first.leq(other.first) and self.second.leq(other.second)

    def bottom_like(self) -> "PairLattice":
        return PairLattice(self.first.bottom_like(), self.second.bottom_like())

    @property
    def is_bottom(self) -> bool:
        return self.first.is_bottom and self.second.is_bottom

    def decompose(self) -> Iterator["PairLattice"]:
        first_bottom = self.first.bottom_like()
        second_bottom = self.second.bottom_like()
        for irreducible in self.first.decompose():
            yield PairLattice(irreducible, second_bottom)
        for irreducible in self.second.decompose():
            yield PairLattice(first_bottom, irreducible)

    def delta(self, other: "PairLattice") -> "PairLattice":
        return PairLattice(self.first.delta(other.first), self.second.delta(other.second))

    def size_units(self) -> int:
        return self.first.size_units() + self.second.size_units()

    def size_bytes(self, model: "SizeModel") -> int:
        return self.first.size_bytes(model) + self.second.size_bytes(model)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PairLattice)
            and self.first == other.first
            and self.second == other.second
        )

    def __hash__(self) -> int:
        return hash((PairLattice, self.first, self.second))

    def __repr__(self) -> str:
        return f"PairLattice({self.first!r}, {self.second!r})"
