"""Primitive lattices: chains of naturals, generic chains, and booleans.

Chains (total orders) are the building blocks of most practical CRDTs:
``GCounter`` maps replica identifiers to the ``MaxInt`` chain, and
last-writer-wins registers use a timestamp chain as the first component
of a lexicographic pair (Appendix B of the paper).

In a chain every non-bottom element is join-irreducible — each element
has exactly one element directly below it — so the decomposition rule is
simply ``⇓c = {c}`` for ``c ≠ ⊥`` (Appendix C).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.lattice.base import Lattice

if TYPE_CHECKING:  # pragma: no cover
    from repro.sizes import SizeModel


class MaxInt(Lattice):
    """The chain of natural numbers ``(ℕ, ≤, max)`` with bottom ``0``.

    This is the per-replica entry lattice of the grow-only counter in
    Figure 2a of the paper.

    >>> MaxInt(3).join(MaxInt(5))
    MaxInt(5)
    >>> MaxInt(0).is_bottom
    True
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        if value < 0:
            raise ValueError(f"MaxInt is a lattice over naturals, got {value}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def join(self, other: "MaxInt") -> "MaxInt":
        return self if self.value >= other.value else other

    def leq(self, other: "MaxInt") -> bool:
        return self.value <= other.value

    def bottom_like(self) -> "MaxInt":
        return _MAX_INT_BOTTOM

    @property
    def is_bottom(self) -> bool:
        return self.value == 0

    def decompose(self) -> Iterator["MaxInt"]:
        if self.value > 0:
            yield self

    def delta(self, other: "MaxInt") -> "MaxInt":
        return self if self.value > other.value else _MAX_INT_BOTTOM

    def size_units(self) -> int:
        return 0 if self.value == 0 else 1

    def size_bytes(self, model: "SizeModel") -> int:
        return 0 if self.value == 0 else model.int_bytes

    def increment(self, by: int = 1) -> "MaxInt":
        """Return a new value ``by`` steps up the chain (an inflation)."""
        if by < 0:
            raise ValueError("increment must be non-negative to be an inflation")
        return MaxInt(self.value + by)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MaxInt) and self.value == other.value

    def __hash__(self) -> int:
        return hash((MaxInt, self.value))

    def __repr__(self) -> str:
        return f"MaxInt({self.value})"


_MAX_INT_BOTTOM = MaxInt(0)


class Chain(Lattice):
    """A chain over any totally ordered Python values, with explicit bottom.

    ``Chain(value, bottom)`` lifts a totally ordered set (timestamps,
    version numbers, strings) into a lattice whose join is ``max``.  The
    bottom must compare ``<=`` every value ever used; for numeric
    timestamps ``0`` or ``-inf`` are typical choices.

    >>> Chain(7, bottom=0).join(Chain(3, bottom=0)).value
    7
    """

    __slots__ = ("value", "bottom_value", "_bytes_cache")

    def __init__(self, value: Any, bottom: Any = 0) -> None:
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "bottom_value", bottom)
        object.__setattr__(self, "_bytes_cache", None)
        if value < bottom:
            raise ValueError(f"chain value {value!r} below bottom {bottom!r}")

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def join(self, other: "Chain") -> "Chain":
        return self if other.value <= self.value else other

    def leq(self, other: "Chain") -> bool:
        return self.value <= other.value

    def bottom_like(self) -> "Chain":
        return Chain(self.bottom_value, bottom=self.bottom_value)

    @property
    def is_bottom(self) -> bool:
        return self.value == self.bottom_value

    def decompose(self) -> Iterator["Chain"]:
        if not self.is_bottom:
            yield self

    def delta(self, other: "Chain") -> "Chain":
        return self if other.value < self.value else self.bottom_like()

    def size_units(self) -> int:
        return 0 if self.is_bottom else 1

    def size_bytes(self, model: "SizeModel") -> int:
        if self.is_bottom:
            return 0
        cached = self._bytes_cache
        if cached is None or cached[0] is not model:
            cached = (model, model.sizeof(self.value))
            # repro: lint-ok[frozen-mutation] sanctioned memo: byte size is a pure function of (frozen value, model)
            object.__setattr__(self, "_bytes_cache", cached)
        return cached[1]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Chain) and self.value == other.value

    def __hash__(self) -> int:
        return hash((Chain, self.value))

    def __repr__(self) -> str:
        return f"Chain({self.value!r})"


class Bool(Lattice):
    """The two-point lattice ``False ⊏ True`` with logical-or join.

    Useful as an enable flag and as the simplest possible lattice for
    exercising composition constructs in tests.
    """

    __slots__ = ("value",)

    def __init__(self, value: bool = False) -> None:
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def join(self, other: "Bool") -> "Bool":
        return _BOOL_TRUE if (self.value or other.value) else _BOOL_FALSE

    def leq(self, other: "Bool") -> bool:
        return (not self.value) or other.value

    def bottom_like(self) -> "Bool":
        return _BOOL_FALSE

    @property
    def is_bottom(self) -> bool:
        return not self.value

    def decompose(self) -> Iterator["Bool"]:
        if self.value:
            yield self

    def delta(self, other: "Bool") -> "Bool":
        return _BOOL_TRUE if (self.value and not other.value) else _BOOL_FALSE

    def size_units(self) -> int:
        return 1 if self.value else 0

    def size_bytes(self, model: "SizeModel") -> int:
        return model.bool_bytes if self.value else 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bool) and self.value == other.value

    def __hash__(self) -> int:
        return hash((Bool, self.value))

    def __repr__(self) -> str:
        return f"Bool({self.value})"


_BOOL_FALSE = Bool(False)
_BOOL_TRUE = Bool(True)
