"""Join-semilattice substrate for state-based CRDTs.

This package implements the lattice theory that underpins the paper
*Efficient Synchronization of State-based CRDTs* (Enes et al., ICDE 2019):

* a :class:`~repro.lattice.base.Lattice` protocol for join-semilattice
  values with a bottom element (Section II of the paper);
* the primitive lattices and composition constructs of Appendix B
  (chains, powersets, finite functions, products, lexicographic products,
  linear sums, and sets of maximal elements);
* irredundant join decompositions ``⇓x`` and the optimal delta function
  ``∆(a, b)`` of Section III / Appendix C.

All lattice values are immutable and hashable, so they can be shared
freely between replicas, delta buffers, and message payloads.
"""

from repro.lattice.base import Lattice, join_all
from repro.lattice.primitives import Bool, Chain, MaxInt
from repro.lattice.set_lattice import SetLattice
from repro.lattice.map_lattice import MapLattice
from repro.lattice.product import PairLattice
from repro.lattice.lexicographic import LexPair
from repro.lattice.linear_sum import LinearSum
from repro.lattice.maximals import MaxElements
from repro.lattice.decompose import (
    decomposition,
    delta,
    is_irredundant_decomposition,
    is_join_decomposition,
    is_join_irreducible,
)

__all__ = [
    "Lattice",
    "join_all",
    "Bool",
    "Chain",
    "MaxInt",
    "SetLattice",
    "MapLattice",
    "PairLattice",
    "LexPair",
    "LinearSum",
    "MaxElements",
    "decomposition",
    "delta",
    "is_join_decomposition",
    "is_irredundant_decomposition",
    "is_join_irreducible",
]
