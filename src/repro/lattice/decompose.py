"""Join decompositions and the optimal delta function ``∆``.

This module exposes the paper's Section III as standalone functions:

* :func:`decomposition` — the unique irredundant join decomposition
  ``⇓x`` (computed by each lattice's ``decompose`` per Appendix C);
* :func:`delta` — the optimal delta ``∆(a, b)``, the least state that
  joined with ``b`` yields ``a ⊔ b``;
* :func:`is_join_irreducible`, :func:`is_join_decomposition`, and
  :func:`is_irredundant_decomposition` — checkable definitions 1–3,
  used extensively by the property-based test-suite.

``delta`` simply dispatches to the lattice's own method so callers get
the structurally recursive fast paths; the checker functions implement
the definitions literally (and hence slowly) so tests can validate the
fast paths against them.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TypeVar

from repro.lattice.base import Lattice, join_all

L = TypeVar("L", bound=Lattice)


def decomposition(state: L) -> List[L]:
    """Return the irredundant join decomposition ``⇓state`` as a list.

    The bottom element decomposes into the empty list; any other state
    decomposes into one or more join-irreducibles whose join restores
    the state (Definition 2 and Proposition 2 of the paper).
    """
    return list(state.decompose())


def delta(a: L, b: L) -> L:
    """The minimum delta between states: ``∆(a, b) = ⊔{y ∈ ⇓a | y ⋢ b}``.

    Joined with ``b`` it yields ``a ⊔ b``, and it is the least such
    state: for any ``c`` with ``c ⊔ b = a ⊔ b`` we have ``∆(a, b) ⊑ c``.

    >>> from repro.lattice import SetLattice
    >>> delta(SetLattice({"a", "b"}), SetLattice({"b", "c"}))
    SetLattice({'a'})
    """
    return a.delta(b)


def is_join_irreducible(state: L, candidates: Sequence[L] | None = None) -> bool:
    """Definition 1, checked literally against a finite candidate pool.

    A state ``x`` is join-irreducible if it cannot be produced as the
    join of any finite set of states not containing ``x``.  For the
    lattices in this library, it suffices to check the canonical
    decomposition: ``x`` is join-irreducible iff ``⇓x = {x}``.  When
    ``candidates`` is given, the definition is additionally verified
    against every subset-free combination drawn from the pool (used by
    tests on small lattices).
    """
    if state.is_bottom:
        return False
    parts = list(state.decompose())
    canonical = len(parts) == 1 and parts[0] == state
    if candidates is None:
        return canonical
    below = [c for c in candidates if c.leq(state) and c != state]
    if not below:
        return canonical
    rejoined = join_all(below, state.bottom_like())
    # x is join-reducible iff the join of everything strictly below it
    # (within the pool) reaches x.
    return canonical and rejoined != state


def is_join_decomposition(parts: Iterable[L], state: L) -> bool:
    """Definition 2: parts are join-irreducible and join back to ``state``."""
    parts = list(parts)
    if not all(is_join_irreducible(p) for p in parts):
        return False
    return join_all(parts, state.bottom_like()) == state


def is_irredundant_decomposition(parts: Iterable[L], state: L) -> bool:
    """Definition 3: a join decomposition with no removable element.

    Removing any single element must strictly lower the join.  (For a
    decomposition, checking single-element removals is equivalent to
    checking all proper subsets.)
    """
    parts = list(parts)
    if not is_join_decomposition(parts, state):
        return False
    bottom = state.bottom_like()
    for index in range(len(parts)):
        remainder = parts[:index] + parts[index + 1 :]
        if join_all(remainder, bottom) == state:
            return False
    return True
