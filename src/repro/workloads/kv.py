"""Workloads over the sharded key-value store.

The paper's workloads drive one replicated object (or one composed
store lattice) on every node.  These drive :mod:`repro.kv`: typed
operations on a keyspace of heterogeneous CRDTs, each routed — like a
smart client holding a copy of the ring — to an owner of the key's
shard.  Schedules are pre-generated from a seed, so every algorithm in
a sweep replays the identical operation stream against the identical
placement.

Two generators:

* :class:`KVZipfWorkload` — a YCSB-flavoured mixed-type keyspace
  (counters, sets, registers, add-wins sets) with Zipf-distributed key
  popularity, the store-level analogue of the paper's contention sweep;
* :class:`KVRetwisWorkload` — the Retwis application of Section V-C
  recast onto the store: follower sets, walls, and timelines become
  independent keys spread over the ring, and a post fans out to the
  author's followers *as known at schedule time* (the deterministic
  stand-in for a client reading the follower set before writing).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.kv.ring import HashRing
from repro.kv.store import KVUpdate
from repro.lattice.map_lattice import MapLattice
from repro.workloads.base import Workload
from repro.workloads.retwis import (
    FOLLOW_SHARE,
    POST_SHARE,
    followers_key,
    make_tweet_content,
    make_tweet_id,
    timeline_key,
    wall_key,
)
from repro.workloads.zipf import ZipfSampler

#: Element pool sizes for set-valued keys: small enough that hot keys
#: see duplicate adds (bottom deltas) and removals of present elements.
_GSET_POOL = 64
_AWSET_POOL = 24


class _RoutedWorkload(Workload):
    """Shared plumbing: a pre-generated ``(round, node) → ops`` table."""

    def __init__(self, ring: HashRing, rounds: int) -> None:
        super().__init__(len(ring.replicas), rounds)
        self.ring = ring
        self._schedule: Dict[Tuple[int, int], List[KVUpdate]] = {}

    def bottom(self) -> MapLattice:
        return MapLattice()

    def _route(self, round_index: int, op: KVUpdate, pick: int) -> None:
        """Assign ``op`` to one of its key's owners (spread by ``pick``)."""
        owners = self.ring.owners(op.key)
        node = owners[pick % len(owners)]
        self._schedule.setdefault((round_index, node), []).append(op)

    def updates_for(self, round_index: int, node: int) -> Sequence[KVUpdate]:
        return tuple(self._schedule.get((round_index, node), ()))


class KVZipfWorkload(_RoutedWorkload):
    """Mixed-type keyspace under Zipf-skewed key popularity.

    Keys cycle through the schema's prefix conventions —
    ``gct:`` (GCounter), ``set:`` (GSet), ``reg:`` (LWWRegister),
    ``aws:`` (AWSet), ``cnt:`` (PNCounter) — so one schedule exercises
    grow-only, lexicographic, and causal synchronization at once.

    Args:
        ring: Key placement; also fixes the node count.
        rounds: Update rounds (one per synchronization interval).
        ops_per_node: Mean operations per node per round.
        keys: Keyspace size (popularity rank = key index).
        zipf_coefficient: Contention knob, 0.5 (low) to 1.5 (high).
        seed: Derives the entire schedule.
    """

    TYPE_CYCLE = ("gct", "set", "reg", "aws", "cnt")

    def __init__(
        self,
        ring: HashRing,
        rounds: int,
        ops_per_node: int = 4,
        *,
        keys: int = 1000,
        zipf_coefficient: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(ring, rounds)
        self.name = f"kv-zipf({zipf_coefficient})"
        self.keys = keys
        self.zipf_coefficient = zipf_coefficient
        self._key_names = [
            f"{self.TYPE_CYCLE[i % len(self.TYPE_CYCLE)]}:{i:05d}" for i in range(keys)
        ]
        sampler = ZipfSampler(keys, zipf_coefficient, seed)
        rng = random.Random(seed ^ 0x5EED)
        clock = 0  # monotone logical clock: unique LWW timestamps
        for round_index in range(rounds):
            for _ in range(self.n_nodes * ops_per_node):
                clock += 1
                key = self._key_names[sampler.sample()]
                prefix = key[:3]
                if prefix == "gct":
                    op = KVUpdate(key, "increment", (1 + rng.randrange(3),))
                elif prefix == "cnt":
                    kind = "increment" if rng.random() < 0.7 else "decrement"
                    op = KVUpdate(key, kind, (1 + rng.randrange(3),))
                elif prefix == "set":
                    op = KVUpdate(key, "add", (f"e{rng.randrange(_GSET_POOL):03d}",))
                elif prefix == "aws":
                    element = f"a{rng.randrange(_AWSET_POOL):03d}"
                    kind = "add" if rng.random() < 0.75 else "remove"
                    op = KVUpdate(key, kind, (element,))
                else:  # reg
                    op = KVUpdate(key, "write", (f"v{clock:08d}", clock))
                self._route(round_index, op, rng.randrange(1 << 16))


class KVRetwisWorkload(_RoutedWorkload):
    """Retwis (Table II) over the store: one key per application object.

    Follows and posts write; timeline reads generate no replication
    traffic and are omitted from the schedule (their Table II share is
    respected when drawing operation kinds, so the write mix matches
    the paper's).  The follow graph is tracked at schedule-generation
    time: a post fans out to the followers the author had accumulated
    when the operation was drawn.
    """

    def __init__(
        self,
        ring: HashRing,
        rounds: int,
        ops_per_node: int = 4,
        *,
        users: int = 200,
        zipf_coefficient: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(ring, rounds)
        self.name = f"kv-retwis({zipf_coefficient})"
        self.users = users
        sampler = ZipfSampler(users, zipf_coefficient, seed)
        rng = random.Random(seed ^ 0xE7)
        followers: Dict[int, List[int]] = {}
        counter = 0
        self.follows = self.posts = self.timeline_reads = 0
        for round_index in range(rounds):
            for _ in range(self.n_nodes * ops_per_node):
                draw = rng.random()
                if draw < FOLLOW_SHARE:
                    self.follows += 1
                    follower = sampler.uniform(users)
                    target = sampler.sample()
                    ops = [KVUpdate(followers_key(target), "add", (follower,))]
                    bucket = followers.setdefault(target, [])
                    if follower not in bucket:
                        bucket.append(follower)
                elif draw < FOLLOW_SHARE + POST_SHARE:
                    self.posts += 1
                    counter += 1
                    author = sampler.sample()
                    tweet_id = make_tweet_id(counter)
                    content = make_tweet_content(counter)
                    ops = [KVUpdate(wall_key(author), "put_chain", (tweet_id, content))]
                    for follower in followers.get(author, ()):
                        ops.append(
                            KVUpdate(
                                timeline_key(follower),
                                "put_chain",
                                (f"ts{counter:029d}", tweet_id),
                            )
                        )
                else:
                    # Timeline read: no replicated write.
                    self.timeline_reads += 1
                    ops = []
                for op in ops:
                    self._route(round_index, op, rng.randrange(1 << 16))
