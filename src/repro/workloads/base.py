"""The workload interface consumed by the experiment runner.

A workload owns the *update schedule* of an experiment: which node
applies which δ-mutators in which round.  Schedules are deterministic —
pre-generated from a seed at construction — so that every algorithm in
a comparison sweep replays exactly the same operations, which is what
makes the paper's cross-algorithm ratios meaningful.

Updates are δ-mutator closures (state → optimal delta).  They receive
the *local replica's* state when applied, so application-level logic
(such as Retwis reading an author's follower set before fanning out a
tweet) naturally sees the executing node's current view, like a client
attached to that replica would.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.lattice.base import Lattice

#: A δ-mutator closure: current state → optimal delta.
DeltaMutator = Callable[[Lattice], Lattice]


class Workload(ABC):
    """A deterministic update schedule over a cluster of replicas.

    Attributes:
        name: Label used in experiment reports (e.g. ``"gmap-30"``).
        rounds: Number of update rounds — the paper uses 100 events per
            replica for the micro-benchmarks.
        n_nodes: Number of replicas the schedule was generated for.
    """

    name: str = "abstract"

    def __init__(self, n_nodes: int, rounds: int) -> None:
        if n_nodes < 1:
            raise ValueError("a workload needs at least one node")
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self.n_nodes = n_nodes
        self.rounds = rounds

    @abstractmethod
    def bottom(self) -> Lattice:
        """The initial (bottom) state every replica starts from."""

    @abstractmethod
    def updates_for(self, round_index: int, node: int) -> Sequence[DeltaMutator]:
        """The δ-mutators ``node`` applies in ``round_index``."""

    def total_updates(self) -> int:
        """Number of update operations in the whole schedule."""
        count = 0
        for round_index in range(self.rounds):
            for node in range(self.n_nodes):
                count += len(self.updates_for(round_index, node))
        return count

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, nodes={self.n_nodes}, rounds={self.rounds})"
