"""Causal (add/remove) workloads — the Appendix B evaluation substrate.

The paper's micro-benchmarks (Table I) only grow; its Appendix B argues
the decomposition machinery extends to the CRDTs used in practice,
whose defining feature is *removal*.  These workloads drive the causal
types through the same deterministic-schedule interface as the Table I
generators, so the whole protocol suite can be compared on
observed-remove data with one line changed.

``AWSetChurnWorkload`` is the canonical case: every node adds or
removes elements of a shared pool each round, at a configurable
add/remove mix.  Schedules are pre-generated from the seed, so every
algorithm replays the identical operation sequence.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.causal import AWSet, Causal
from repro.lattice.base import Lattice
from repro.workloads.base import DeltaMutator, Workload


class AWSetChurnWorkload(Workload):
    """Random adds/removes over a shared element pool (add-wins set).

    Args:
        n_nodes: Replica count.
        rounds: Update rounds (one operation per node per round).
        pool_size: Number of distinct elements being churned; smaller
            pools mean more concurrent operations on the same element
            (contention), the regime where conflict policies matter.
        add_ratio: Probability an operation is an add (the rest are
            removes of the same pool).
        element_bytes: Serialized size of each element.
        seed: Schedule seed; two workloads with equal parameters
            generate identical schedules.
    """

    def __init__(
        self,
        n_nodes: int,
        rounds: int = 100,
        pool_size: int = 40,
        add_ratio: float = 0.7,
        element_bytes: int = 20,
        seed: int = 97,
    ) -> None:
        super().__init__(n_nodes, rounds)
        if pool_size < 1:
            raise ValueError("pool_size must be positive")
        if not 0.0 < add_ratio <= 1.0:
            raise ValueError(f"add_ratio must be in (0, 1], got {add_ratio}")
        self.name = f"awset-churn-{int(add_ratio * 100)}"
        self.pool = [
            f"item-{i:05d}".ljust(element_bytes, "x") for i in range(pool_size)
        ]
        rng = random.Random(seed)
        #: schedule[round][node] = ("add" | "remove", element)
        self.schedule: List[List[Tuple[str, str]]] = [
            [
                (
                    "add" if rng.random() < add_ratio else "remove",
                    rng.choice(self.pool),
                )
                for _ in range(n_nodes)
            ]
            for _ in range(rounds)
        ]
        #: One AWSet handle per node, used purely for δ-mutator derivation.
        self._handles = [AWSet(node) for node in range(n_nodes)]

    def bottom(self) -> Lattice:
        return Causal.map_bottom()

    def updates_for(self, round_index: int, node: int) -> Sequence[DeltaMutator]:
        kind, element = self.schedule[round_index][node]
        handle = self._handles[node]
        if kind == "add":
            return (lambda state, e=element, h=handle: h.add_delta(state, e),)
        return (lambda state, e=element, h=handle: h.remove_delta(state, e),)
