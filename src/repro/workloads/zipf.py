"""Zipf sampling for contention-controlled workloads.

The Retwis evaluation (Section V-C) draws the users targeted by each
operation from a Zipf distribution whose coefficient sweeps 0.5 (low
contention — updates spread almost evenly over all objects) to 1.5
(high contention — a handful of hot objects absorb most updates),
following the methodology of TAPIR (Zhang et al., SOSP 2015).

The sampler is purely deterministic given its seed, so the same
schedule replays identically for every synchronization algorithm.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List, Sequence


class ZipfSampler:
    """Draw ranks ``0..n-1`` with probability ``∝ 1/(rank+1)^s``.

    >>> sampler = ZipfSampler(100, coefficient=1.5, seed=7)
    >>> draws = [sampler.sample() for _ in range(1000)]
    >>> draws.count(0) > draws.count(50)   # rank 0 is the hottest
    True
    """

    def __init__(self, n: int, coefficient: float, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("need at least one rank to sample")
        if coefficient < 0:
            raise ValueError("the Zipf coefficient must be non-negative")
        self.n = n
        self.coefficient = coefficient
        self._rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** coefficient for rank in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against floating-point shortfall
        self._cumulative = cumulative

    def sample(self) -> int:
        """One rank draw."""
        return bisect_left(self._cumulative, self._rng.random())

    def sample_many(self, count: int) -> List[int]:
        """``count`` independent draws."""
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """The probability mass assigned to ``rank``."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range")
        lower = self._cumulative[rank - 1] if rank else 0.0
        return self._cumulative[rank] - lower

    def choice(self, items: Sequence) -> object:
        """Pick from ``items`` (length ``n``) with Zipf-weighted ranks."""
        if len(items) != self.n:
            raise ValueError(f"expected {self.n} items, got {len(items)}")
        return items[self.sample()]

    def uniform(self, n: int) -> int:
        """A uniform draw from the same RNG stream (for actor choice)."""
        return self._rng.randrange(n)
