"""The micro-benchmarks of Table I.

Every second each node synchronizes with its neighbours *and* executes
one update event over a single shared CRDT:

=========  ============================  ==============================
Type       Periodic event                 Measurement
=========  ============================  ==============================
GCounter   single increment               number of entries in the map
GSet       addition of a unique element   number of elements in the set
GMap K%    change the value of K/N% keys  number of entries in the map
=========  ============================  ==============================

For ``GMap K%`` each node refreshes its share of keys such that
globally K % of all 1000 keys are modified within each synchronization
interval; the GCounter benchmark is the particular case where 100 % of
the (per-replica) entries change every interval.  The paper runs 100
events per replica.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.lattice.base import Lattice
from repro.lattice.map_lattice import MapLattice
from repro.lattice.primitives import MaxInt
from repro.lattice.set_lattice import SetLattice
from repro.workloads.base import DeltaMutator, Workload


class GCounterWorkload(Workload):
    """One increment per node per round on a shared grow-only counter."""

    name = "gcounter"

    def __init__(self, n_nodes: int, rounds: int = 100) -> None:
        super().__init__(n_nodes, rounds)

    def bottom(self) -> Lattice:
        return MapLattice()

    def updates_for(self, round_index: int, node: int) -> Sequence[DeltaMutator]:
        def increment(state: Lattice, replica: int = node) -> Lattice:
            assert isinstance(state, MapLattice)
            current = state.get(replica)
            base = current.value if isinstance(current, MaxInt) else 0
            return MapLattice({replica: MaxInt(base + 1)})

        return (increment,)


class GSetWorkload(Workload):
    """One globally unique element added per node per round.

    Elements are fixed-width strings so byte-level accounting is
    uniform; ``element_bytes`` controls their serialized size.
    """

    name = "gset"

    def __init__(self, n_nodes: int, rounds: int = 100, element_bytes: int = 20) -> None:
        super().__init__(n_nodes, rounds)
        if element_bytes < 12:
            raise ValueError("element_bytes must be at least 12 to stay unique")
        self.element_bytes = element_bytes

    def bottom(self) -> Lattice:
        return SetLattice()

    def element(self, round_index: int, node: int) -> str:
        """The unique element ``node`` adds in ``round_index``."""
        tag = f"n{node:04d}r{round_index:05d}"
        return tag.ljust(self.element_bytes, "x")

    def updates_for(self, round_index: int, node: int) -> Sequence[DeltaMutator]:
        element = self.element(round_index, node)

        def add(state: Lattice, e: str = element) -> Lattice:
            assert isinstance(state, SetLattice)
            if e in state:
                return state.bottom_like()
            return SetLattice((e,))

        return (add,)


class GMapWorkload(Workload):
    """Refresh K % of a 1000-key grow-only map per interval, globally.

    Round ``r`` refreshes ``percent``·``total_keys``/100 keys, split
    fairly across nodes (shares differ by at most one key).  The slice
    rotates every round so the whole keyspace is exercised.  A refresh
    bumps the key's ``MaxInt`` value, guaranteeing every refresh is a
    strict inflation with something new to disseminate.
    """

    def __init__(
        self,
        n_nodes: int,
        percent: int,
        rounds: int = 100,
        total_keys: int = 1000,
    ) -> None:
        super().__init__(n_nodes, rounds)
        if not 0 < percent <= 100:
            raise ValueError(f"percent must be in (0, 100], got {percent}")
        self.percent = percent
        self.total_keys = total_keys
        self.name = f"gmap-{percent}"
        self.keys_per_round = max(1, (percent * total_keys) // 100)

    def bottom(self) -> Lattice:
        return MapLattice()

    def key(self, index: int) -> str:
        return f"key-{index % self.total_keys:04d}"

    def node_slice(self, round_index: int, node: int) -> List[str]:
        """The keys ``node`` refreshes in ``round_index``."""
        per_node, remainder = divmod(self.keys_per_round, self.n_nodes)
        share = per_node + (1 if node < remainder else 0)
        if share == 0:
            return []
        rotation = (round_index * self.keys_per_round) % self.total_keys
        offset = per_node * node + min(node, remainder)
        return [self.key(rotation + offset + i) for i in range(share)]

    def updates_for(self, round_index: int, node: int) -> Sequence[DeltaMutator]:
        keys = self.node_slice(round_index, node)
        if not keys:
            return ()

        def refresh(state: Lattice, batch: List[str] = keys) -> Lattice:
            assert isinstance(state, MapLattice)
            entries: Dict[str, MaxInt] = {}
            for key in batch:
                current = state.get(key)
                base = current.value if isinstance(current, MaxInt) else 0
                entries[key] = MaxInt(base + 1)
            return MapLattice(entries)

        return (refresh,)


def make_micro_workload(kind: str, n_nodes: int, rounds: int = 100) -> Workload:
    """Build a Table I workload by its paper label.

    Accepted kinds: ``"gcounter"``, ``"gset"``, and ``"gmap-K"`` for any
    integer percentage K (the paper uses 10, 30, 60, and 100).
    """
    if kind == "gcounter":
        return GCounterWorkload(n_nodes, rounds)
    if kind == "gset":
        return GSetWorkload(n_nodes, rounds)
    if kind.startswith("gmap-"):
        percent = int(kind.split("-", 1)[1])
        return GMapWorkload(n_nodes, percent, rounds)
    raise ValueError(f"unknown micro-benchmark {kind!r}")


#: The benchmark grid of Figures 7 and 8.
MICRO_BENCHMARKS = ("gcounter", "gset", "gmap-10", "gmap-30", "gmap-60", "gmap-100")
