"""Workload generators driving the evaluation.

* :mod:`repro.workloads.micro` — the Table I micro-benchmarks
  (GCounter single increments, GSet unique-element additions, and
  GMap K% key refreshes over 1000 keys);
* :mod:`repro.workloads.zipf` — the Zipf object-contention sampler used
  by the Retwis runs (coefficients 0.5–1.5, Section V-C);
* :mod:`repro.workloads.retwis` — the Retwis Twitter-clone application
  workload of Table II (Follow 15 %, Post 35 %, Timeline 50 %);
* :mod:`repro.workloads.causal` — add/remove churn over causal CRDTs,
  the Appendix B evaluation substrate;
* :mod:`repro.workloads.kv` — typed, owner-routed operation streams
  over the sharded store of :mod:`repro.kv` (mixed-type Zipf and the
  Retwis application recast per key).
"""

from repro.workloads.base import Workload
from repro.workloads.causal import AWSetChurnWorkload
from repro.workloads.micro import (
    GCounterWorkload,
    GMapWorkload,
    GSetWorkload,
    MICRO_BENCHMARKS,
    make_micro_workload,
)
from repro.workloads.zipf import ZipfSampler
from repro.workloads.retwis import RetwisWorkload, RetwisStats
from repro.workloads.kv import KVRetwisWorkload, KVZipfWorkload

__all__ = [
    "KVRetwisWorkload",
    "KVZipfWorkload",
    "Workload",
    "AWSetChurnWorkload",
    "GCounterWorkload",
    "GSetWorkload",
    "GMapWorkload",
    "MICRO_BENCHMARKS",
    "make_micro_workload",
    "ZipfSampler",
    "RetwisWorkload",
    "RetwisStats",
]
