"""The Retwis application workload — Section V-C and Table II.

Retwis is an open-source Twitter clone frequently used as a replication
benchmark.  Each user owns three CRDT objects:

1. a **followers** set (GSet of user identifiers);
2. a **wall** (GMap: tweet identifier ↦ tweet content);
3. a **timeline** (GMap: tweet timestamp ↦ tweet identifier).

The node-local replicated store is modelled as one top-level map
lattice from object key to object state, so synchronization algorithms
treat the entire application state as a single composed CRDT — deltas
are tiny maps touching only the objects an operation wrote.

Operations follow Table II:

=========  ====================  ==========
Operation  CRDT updates          Workload %
=========  ====================  ==========
Follow     1                     15 %
Post       1 + #followers        35 %
Timeline   0                     50 %
=========  ====================  ==========

Posting writes the tweet to the author's wall and fans it out to the
timeline of every follower *currently visible at the executing node* —
exactly the behaviour of a Retwis client attached to that replica.

The users targeted by operations are drawn from a Zipf distribution
(coefficient 0.5–1.5); tweet identifiers and bodies are fixed-width
strings of 31 and 270 bytes, matching the sizes the paper takes from
Facebook's key-value workload analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.lattice.base import Lattice
from repro.lattice.map_lattice import MapLattice
from repro.lattice.primitives import Chain
from repro.lattice.set_lattice import SetLattice
from repro.workloads.base import DeltaMutator, Workload
from repro.workloads.zipf import ZipfSampler

#: Table II operation mix.
FOLLOW_SHARE = 0.15
POST_SHARE = 0.35
TIMELINE_SHARE = 0.50

#: Payload sizes from the paper (Section V-C).
TWEET_ID_BYTES = 31
TWEET_CONTENT_BYTES = 270


def followers_key(user: int) -> str:
    """Object key of a user's follower set."""
    return f"flw:{user:07d}"


def wall_key(user: int) -> str:
    """Object key of a user's wall."""
    return f"wal:{user:07d}"


def timeline_key(user: int) -> str:
    """Object key of a user's timeline."""
    return f"tln:{user:07d}"


def make_tweet_id(counter: int) -> str:
    """A globally unique, 31-byte tweet identifier."""
    return f"t{counter:030d}"


def make_tweet_content(counter: int) -> str:
    """A unique, 270-byte tweet body."""
    prefix = f"tweet {counter} "
    return prefix.ljust(TWEET_CONTENT_BYTES, ".")


@dataclass
class RetwisStats:
    """Operation counts accumulated while generating the schedule."""

    follows: int = 0
    posts: int = 0
    timeline_reads: int = 0

    @property
    def total(self) -> int:
        return self.follows + self.posts + self.timeline_reads


@dataclass(frozen=True)
class _Op:
    """A pre-drawn operation: kind plus the users involved."""

    kind: str
    actor: int
    target: int
    counter: int


class RetwisWorkload(Workload):
    """A deterministic Retwis schedule over a replicated object store.

    Args:
        n_nodes: Replicas in the cluster (the paper uses 50).
        users: Registered users; the paper uses 10 000 (30 000 CRDT
            objects).  Scaled-down runs preserve the contention shape.
        rounds: Update rounds (each is one synchronization interval).
        ops_per_node: Operations each node executes per round.
        zipf_coefficient: Contention knob, 0.5 (low) to 1.5 (high).
        seed: RNG seed; the whole schedule is derived from it.
    """

    def __init__(
        self,
        n_nodes: int,
        users: int = 10_000,
        rounds: int = 60,
        ops_per_node: int = 10,
        zipf_coefficient: float = 1.0,
        seed: int = 42,
    ) -> None:
        super().__init__(n_nodes, rounds)
        if users < 2:
            raise ValueError("Retwis needs at least two users")
        self.users = users
        self.ops_per_node = ops_per_node
        self.zipf_coefficient = zipf_coefficient
        self.name = f"retwis-z{zipf_coefficient:g}"
        self.stats = RetwisStats()
        self._schedule = self._generate_schedule(seed)

    # ------------------------------------------------------------------
    # Schedule generation (deterministic).
    # ------------------------------------------------------------------

    def _generate_schedule(self, seed: int) -> Dict[Tuple[int, int], List[_Op]]:
        sampler = ZipfSampler(self.users, self.zipf_coefficient, seed=seed)
        schedule: Dict[Tuple[int, int], List[_Op]] = {}
        counter = 0
        for round_index in range(self.rounds):
            for node in range(self.n_nodes):
                ops: List[_Op] = []
                for _ in range(self.ops_per_node):
                    roll = sampler._rng.random()
                    target = sampler.sample()
                    actor = sampler.uniform(self.users)
                    counter += 1
                    if roll < FOLLOW_SHARE:
                        self.stats.follows += 1
                        ops.append(_Op("follow", actor, target, counter))
                    elif roll < FOLLOW_SHARE + POST_SHARE:
                        self.stats.posts += 1
                        ops.append(_Op("post", target, target, counter))
                    else:
                        self.stats.timeline_reads += 1
                        ops.append(_Op("timeline", actor, target, counter))
                schedule[(round_index, node)] = ops
        return schedule

    # ------------------------------------------------------------------
    # Workload interface.
    # ------------------------------------------------------------------

    def bottom(self) -> Lattice:
        return MapLattice()

    def updates_for(self, round_index: int, node: int) -> Sequence[DeltaMutator]:
        mutators: List[DeltaMutator] = []
        for op in self._schedule.get((round_index, node), ()):
            if op.kind == "follow":
                mutators.append(self._follow_mutator(op))
            elif op.kind == "post":
                mutators.append(self._post_mutator(op))
            # Timeline reads perform no CRDT update (Table II).
        return mutators

    # ------------------------------------------------------------------
    # Operation semantics.
    # ------------------------------------------------------------------

    def _follow_mutator(self, op: _Op) -> DeltaMutator:
        """User ``actor`` follows ``target``: add to target's followers."""
        key = followers_key(op.target)
        follower = f"u{op.actor:07d}"

        def follow(state: Lattice) -> Lattice:
            assert isinstance(state, MapLattice)
            current = state.get(key)
            if isinstance(current, SetLattice) and follower in current:
                return state.bottom_like()
            return MapLattice({key: SetLattice((follower,))})

        return follow

    def _post_mutator(self, op: _Op) -> DeltaMutator:
        """``actor`` posts: write wall, fan out to follower timelines."""
        tweet_id = make_tweet_id(op.counter)
        content = make_tweet_content(op.counter)
        timestamp = f"ts{op.counter:012d}"
        author_wall = wall_key(op.actor)
        author_followers = followers_key(op.actor)

        def post(state: Lattice) -> Lattice:
            assert isinstance(state, MapLattice)
            entries: Dict[str, Lattice] = {
                author_wall: MapLattice({tweet_id: Chain(content, bottom="")})
            }
            visible = state.get(author_followers)
            if isinstance(visible, SetLattice):
                for follower in visible:
                    user = int(follower[1:])
                    entries[timeline_key(user)] = MapLattice(
                        {timestamp: Chain(tweet_id, bottom="")}
                    )
            return MapLattice(entries)

        return post

    # ------------------------------------------------------------------
    # Queries used by examples and tests.
    # ------------------------------------------------------------------

    @staticmethod
    def read_timeline(state: MapLattice, user: int, limit: int = 10) -> List[str]:
        """The ``limit`` most recent tweet ids on a user's timeline."""
        timeline = state.get(timeline_key(user))
        if not isinstance(timeline, MapLattice):
            return []
        recent = sorted(timeline.items(), key=lambda kv: kv[0], reverse=True)[:limit]
        return [chain.value for _, chain in recent if isinstance(chain, Chain)]

    @staticmethod
    def read_wall(state: MapLattice, user: int) -> Dict[str, str]:
        """All tweets on a user's wall, id → content."""
        wall = state.get(wall_key(user))
        if not isinstance(wall, MapLattice):
            return {}
        return {tid: chain.value for tid, chain in wall.items() if isinstance(chain, Chain)}

    @staticmethod
    def read_followers(state: MapLattice, user: int) -> List[str]:
        """A user's followers, sorted."""
        followers = state.get(followers_key(user))
        if not isinstance(followers, SetLattice):
            return []
        return sorted(followers.elements)
