"""Figure 12 — CPU overhead of classic delta-based vs BP+RR on Retwis.

Classic delta-based produces and processes much larger synchronization
messages than BP+RR under contention, and pays for it in CPU: the paper
reports overheads of 0.4×, 5.5×, and 7.9× at Zipf coefficients 1, 1.25,
and 1.5.

Two measurements are reported for each coefficient:

* the wall-clock ratio — CPU seconds spent inside algorithm callbacks,
  which depends on the host machine but tracks the paper's metric;
* the deterministic proxy ratio — lattice units produced plus consumed,
  which is machine-independent and reproducible bit-for-bit.

The *overhead* is ``ratio − 1``, matching the paper's phrasing
("an overhead of 0.4x, 5.5x and 7.9x").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.report import format_table
from repro.experiments.retwis_sweep import (
    PAPER_COEFFICIENTS,
    RetwisConfig,
    RetwisRun,
    SweepKey,
    run_retwis_sweep,
)


@dataclass
class Figure12Result:
    config: RetwisConfig
    coefficients: Sequence[float]
    runs: Dict[SweepKey, RetwisRun]

    def cpu_ratio_wall(self, coefficient: float) -> float:
        classic = self.runs[(coefficient, "delta-based")].result.processing_seconds()
        best = self.runs[(coefficient, "delta-based-bp-rr")].result.processing_seconds()
        return classic / best if best else float("inf")

    def cpu_ratio_proxy(self, coefficient: float) -> float:
        classic = self.runs[(coefficient, "delta-based")].result.processing_units()
        best = self.runs[(coefficient, "delta-based-bp-rr")].result.processing_units()
        return classic / best if best else float("inf")

    def overhead_wall(self, coefficient: float) -> float:
        """The paper's "overhead": ratio − 1."""
        return self.cpu_ratio_wall(coefficient) - 1.0

    def overhead_proxy(self, coefficient: float) -> float:
        return self.cpu_ratio_proxy(coefficient) - 1.0

    def rows(self) -> List[Tuple]:
        return [
            (
                f"{coefficient:g}",
                self.cpu_ratio_wall(coefficient),
                self.overhead_wall(coefficient),
                self.cpu_ratio_proxy(coefficient),
                self.overhead_proxy(coefficient),
            )
            for coefficient in self.coefficients
        ]

    def render(self) -> str:
        return format_table(
            ("zipf", "wall ratio", "wall overhead", "proxy ratio", "proxy overhead"),
            self.rows(),
            title=(
                "Figure 12 — CPU cost of classic delta-based relative to BP+RR "
                f"(Retwis, mesh({self.config.nodes}, {self.config.degree}))"
            ),
        )


def run_figure12(
    coefficients: Sequence[float] = PAPER_COEFFICIENTS,
    config: RetwisConfig = RetwisConfig(),
) -> Figure12Result:
    """Reproduce the Figure 12 CPU comparison (reuses the Figure 11 runs)."""
    runs = run_retwis_sweep(coefficients, config)
    return Figure12Result(config=config, coefficients=tuple(coefficients), runs=runs)
