"""Drivers that regenerate every table and figure of the paper.

Each module reproduces one artifact of the evaluation section:

=============  ===========================================================
Driver         Paper artifact
=============  ===========================================================
``figure1``    Fig. 1 — classic delta ≈ state-based, with CPU overhead
``table1``     Table I — micro-benchmark definitions (verified)
``figure7``    Fig. 7 — GSet/GCounter transmission, tree + mesh
``figure8``    Fig. 8 — GMap 10/30/60/100 % transmission, tree + mesh
``figure9``    Fig. 9 — metadata per node vs cluster size
``figure10``   Fig. 10 — memory ratio vs BP+RR, mesh
``table2``     Table II — Retwis workload characterization (verified)
``figure11``   Fig. 11 — Retwis bandwidth and memory vs Zipf contention
``figure12``   Fig. 12 — Retwis CPU overhead of classic vs BP+RR
``appendixb``  App. B — the Figure 7 grid on causal (add/remove) data
=============  ===========================================================

Every ``run_*`` function accepts scale parameters defaulting to
interactive-friendly sizes; the benchmark harness passes the paper's
sizes where practical.  All runs are deterministic.
"""

from repro.experiments.appendixb import AppendixBResult, run_appendixb
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.figure8 import Figure8Result, run_figure8
from repro.experiments.figure9 import Figure9Result, run_figure9
from repro.experiments.figure10 import Figure10Result, run_figure10
from repro.experiments.figure11 import Figure11Result, run_figure11
from repro.experiments.figure12 import Figure12Result, run_figure12
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.grid import ALL_ALGORITHMS, BASELINE, run_grid
from repro.experiments.retwis_sweep import RetwisConfig, run_retwis_sweep
from repro.experiments.kv_sweep import (
    DEFAULT_ALGORITHMS,
    DEFAULT_STRATEGIES,
    KV_ALGORITHMS,
    KVCell,
    KVConfig,
    KVRepairComparison,
    KVSweepResult,
    RECOVERY_STRATEGIES,
    run_kv_cell,
    run_kv_repair_cell,
    run_kv_repair_comparison,
    run_kv_sweep,
)
from repro.experiments.kv_rebalance import (
    KVRebalanceResult,
    RebalancePhase,
    run_kv_rebalance,
)
from repro.experiments.kv_serve import (
    KVQuorumResult,
    QuorumCell,
    QuorumConfig,
    build_process_cluster,
    run_kv_quorum,
    run_kv_quorum_cell,
)

#: Registry mapping artifact identifiers to their drivers.
EXPERIMENTS = {
    "appendixb": run_appendixb,
    "figure1": run_figure1,
    "table1": run_table1,
    "figure7": run_figure7,
    "figure8": run_figure8,
    "figure9": run_figure9,
    "figure10": run_figure10,
    "table2": run_table2,
    "figure11": run_figure11,
    "figure12": run_figure12,
}

__all__ = [
    "EXPERIMENTS",
    "ALL_ALGORITHMS",
    "BASELINE",
    "run_grid",
    "DEFAULT_ALGORITHMS",
    "KV_ALGORITHMS",
    "KVCell",
    "KVConfig",
    "KVRebalanceResult",
    "KVRepairComparison",
    "KVSweepResult",
    "RebalancePhase",
    "run_kv_cell",
    "run_kv_rebalance",
    "run_kv_repair_cell",
    "run_kv_repair_comparison",
    "run_kv_sweep",
    "KVQuorumResult",
    "QuorumCell",
    "QuorumConfig",
    "build_process_cluster",
    "run_kv_quorum",
    "run_kv_quorum_cell",
    "RetwisConfig",
    "run_retwis_sweep",
    "Figure1Result",
    "run_figure1",
    "AppendixBResult",
    "run_appendixb",
    "Figure7Result",
    "run_figure7",
    "Figure8Result",
    "run_figure8",
    "Figure9Result",
    "run_figure9",
    "Figure10Result",
    "run_figure10",
    "Figure11Result",
    "run_figure11",
    "Figure12Result",
    "run_figure12",
    "Table1Result",
    "run_table1",
    "Table2Result",
    "run_table2",
]
