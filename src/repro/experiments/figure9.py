"""Figure 9 — synchronization metadata versus cluster size.

Vector-based protocols pay metadata that grows with the number of nodes
``N``: given ``P`` neighbours and ``U`` pending updates per round, the
per-node metadata cost is

* Scuttlebutt — ``NP`` (a summary vector per neighbour);
* Scuttlebutt-GC — ``N²P`` (a knowledge matrix per neighbour);
* op-based — ``NPU`` (a vector clock per forwarded operation);
* delta-based — ``P`` (a sequence number per neighbour).

The paper measures, for 32 nodes synchronizing a GSet over a mesh with
4 neighbours and 20-byte node identifiers, metadata shares of 75 %,
99 %, and 97 % for Scuttlebutt, Scuttlebutt-GC and op-based, against
7.7 % for delta-based.  This driver sweeps the same mesh at increasing
sizes and reports measured metadata per node alongside the shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.report import ascii_chart, format_table, human_bytes
from repro.sim.runner import ExperimentResult, run_suite
from repro.sim.topology import partial_mesh
from repro.sync import OpBased, Scuttlebutt, ScuttlebuttGC, delta_bp_rr
from repro.workloads import GSetWorkload

FIGURE9_ALGORITHMS = {
    "scuttlebutt": Scuttlebutt,
    "scuttlebutt-gc": ScuttlebuttGC,
    "op-based": OpBased,
    "delta-based-bp-rr": delta_bp_rr,
}


@dataclass
class Figure9Result:
    """Measured metadata per node for each cluster size × algorithm."""

    sizes: Sequence[int]
    rounds: int
    results: Dict[Tuple[int, str], ExperimentResult]

    def metadata_per_node(self, n: int, algorithm: str) -> float:
        return self.results[(n, algorithm)].metrics.metadata_bytes_per_node()

    def metadata_fraction(self, n: int, algorithm: str) -> float:
        return self.results[(n, algorithm)].metadata_fraction()

    def growth_exponent(self, algorithm: str) -> float:
        """Empirical log-log slope of metadata-per-node vs cluster size.

        ≈1 for linear growth (Scuttlebutt, op-based), ≈2 for quadratic
        (Scuttlebutt-GC), ≈0 for constant (delta-based).
        """
        import math

        first, last = self.sizes[0], self.sizes[-1]
        lo = self.metadata_per_node(first, algorithm)
        hi = self.metadata_per_node(last, algorithm)
        if lo <= 0 or hi <= 0:
            return 0.0
        return math.log(hi / lo) / math.log(last / first)

    def rows(self) -> List[Tuple[int, str, str, float]]:
        out = []
        for n in self.sizes:
            for label in FIGURE9_ALGORITHMS:
                out.append(
                    (
                        n,
                        label,
                        human_bytes(self.metadata_per_node(n, label)),
                        self.metadata_fraction(n, label),
                    )
                )
        return out

    def render(self) -> str:
        table = format_table(
            ("nodes", "algorithm", "metadata/node", "metadata share"),
            self.rows(),
            title=f"Figure 9 — metadata per node (GSet, mesh degree 4, {self.rounds} events/node)",
        )
        slopes = "\n".join(
            f"  {label:20s} growth exponent ≈ {self.growth_exponent(label):.2f}"
            for label in FIGURE9_ALGORITHMS
        )
        chart = ascii_chart(
            {
                label: [self.metadata_per_node(n, label) for n in self.sizes]
                for label in FIGURE9_ALGORITHMS
            },
            log=True,
            unit="B",
        )
        return (
            table
            + "\n(log-log growth of metadata/node with cluster size)\n"
            + slopes
            + f"\n\nmetadata/node across sizes {tuple(self.sizes)} (log scale):\n"
            + chart
        )


def run_figure9(
    sizes: Sequence[int] = (8, 16, 32), rounds: int = 30, degree: int = 4
) -> Figure9Result:
    """Reproduce the Figure 9 metadata sweep."""
    results: Dict[Tuple[int, str], ExperimentResult] = {}
    for n in sizes:
        suite = run_suite(
            FIGURE9_ALGORITHMS,
            lambda n=n: GSetWorkload(n, rounds),
            partial_mesh(n, degree),
        )
        for label, result in suite.items():
            results[(n, label)] = result
    return Figure9Result(sizes=tuple(sizes), rounds=rounds, results=results)
