"""Table I — micro-benchmark definitions, verified against the code.

Table I is definitional: it fixes, for each benchmark type, the periodic
update event and the measurement metric.  This driver replays one round
of each workload and *measures* that the implementation honours the
definition — one entry per GCounter increment, one unique element per
GSet addition, K % of all keys refreshed per GMap interval — then emits
the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.report import format_table
from repro.lattice import MapLattice, SetLattice
from repro.workloads import GCounterWorkload, GMapWorkload, GSetWorkload


@dataclass
class Table1Row:
    benchmark: str
    periodic_event: str
    measurement: str
    verified: bool


@dataclass
class Table1Result:
    rows_checked: List[Table1Row]

    def all_verified(self) -> bool:
        return all(row.verified for row in self.rows_checked)

    def render(self) -> str:
        return format_table(
            ("type", "periodic event", "measurement", "verified"),
            [
                (r.benchmark, r.periodic_event, r.measurement, r.verified)
                for r in self.rows_checked
            ],
            title="Table I — micro-benchmark definitions",
        )


def run_table1(nodes: int = 15) -> Table1Result:
    """Verify each Table I definition against the workload generators."""
    rows: List[Table1Row] = []

    counter = GCounterWorkload(nodes)
    [inc] = counter.updates_for(0, 3)
    delta = inc(MapLattice())
    rows.append(
        Table1Row(
            benchmark="GCounter",
            periodic_event="single increment",
            measurement="number of entries in the map",
            verified=delta.size_units() == 1 and 3 in delta,
        )
    )

    gset = GSetWorkload(nodes)
    elements = {gset.element(r, n) for r in range(3) for n in range(nodes)}
    [add] = gset.updates_for(0, 0)
    rows.append(
        Table1Row(
            benchmark="GSet",
            periodic_event="addition of unique element",
            measurement="number of elements in the set",
            verified=len(elements) == 3 * nodes
            and add(SetLattice()).size_units() == 1,
        )
    )

    for percent in (10, 30, 60, 100):
        gmap = GMapWorkload(nodes, percent, total_keys=1000)
        touched = set()
        for node in range(nodes):
            touched.update(gmap.node_slice(0, node))
        expected = percent * 1000 // 100
        rows.append(
            Table1Row(
                benchmark=f"GMap {percent}%",
                periodic_event=f"change the value of {percent}/N% keys",
                measurement="number of entries in the map",
                verified=len(touched) == expected,
            )
        )

    return Table1Result(rows)
