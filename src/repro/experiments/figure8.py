"""Figure 8 — transmission of GMap 10 %, 30 %, 60 %, 100 %.

The GMap K% benchmarks modulate contention: K% of 1000 keys change
between synchronization rounds.  Low K favours precise mechanisms
(deltas, Scuttlebutt, op-based) over state shipping; at K = 100 % the
map behaves like the GCounter — nearly everything is fresh every round,
and even BP+RR can only offer a modest improvement over state-based.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.grid import BASELINE, EvaluationGrid, run_grid
from repro.experiments.report import format_table

GMAP_WORKLOADS = ("gmap-10", "gmap-30", "gmap-60", "gmap-100")


@dataclass
class Figure8Result:
    grid: EvaluationGrid

    def ratio(self, workload: str, topology: str, algorithm: str) -> float:
        return self.grid.cell(workload, topology).transmission_ratios()[algorithm]

    def reduction_vs_state_based(self, workload: str, topology: str, algorithm: str) -> float:
        """1 − units(algo)/units(state-based): the paper's "% reduction"."""
        cell = self.grid.cell(workload, topology)
        state = cell.results["state-based"].transmission_units()
        algo = cell.results[algorithm].transmission_units()
        return 1.0 - (algo / state if state else 0.0)

    def rows(self) -> List[Tuple[str, str, str, float, float]]:
        return self.grid.rows("transmission")

    def render(self) -> str:
        return format_table(
            ("workload", "topology", "algorithm", "units", f"ratio vs {BASELINE}"),
            self.rows(),
            title=(
                f"Figure 8 — GMap transmission, {self.grid.nodes} nodes, "
                f"{self.grid.rounds} events/node, 1000 keys"
            ),
        )


def run_figure8(nodes: int = 15, rounds: int = 100) -> Figure8Result:
    """Reproduce the Figure 8 sweep over the four GMap contention levels."""
    return Figure8Result(run_grid(GMAP_WORKLOADS, nodes=nodes, rounds=rounds))
