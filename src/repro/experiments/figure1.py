"""Figure 1 — the motivating anomaly.

15 nodes in a partial-mesh topology replicate an always-growing set.
The left plot shows the number of elements sent over time: classic
delta-based synchronization transmits essentially as much as state-based.
The right plot shows CPU processing time relative to state-based:
delta-based additionally pays a substantial processing overhead for all
the buffering and joining it does to no transmission benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.report import format_table
from repro.sim.runner import ExperimentResult, run_suite
from repro.sim.topology import partial_mesh
from repro.sync import StateBased, classic
from repro.workloads import GSetWorkload


@dataclass
class Figure1Result:
    """Transmission series and CPU ratios for the two algorithms."""

    nodes: int
    rounds: int
    results: Dict[str, ExperimentResult]

    def cumulative_series(self, label: str) -> List[Tuple[float, int]]:
        """Cumulative elements sent over time (left plot)."""
        return self.results[label].metrics.cumulative_units_series(1000.0)

    def transmission_ratio(self) -> float:
        """Classic delta-based transmission relative to state-based."""
        state = self.results["state-based"].transmission_units()
        delta = self.results["delta-based"].transmission_units()
        return delta / state if state else float("inf")

    def cpu_ratio_wall(self) -> float:
        """Measured CPU-time ratio of delta-based over state-based."""
        state = self.results["state-based"].processing_seconds()
        delta = self.results["delta-based"].processing_seconds()
        return delta / state if state else float("inf")

    def cpu_ratio_proxy(self) -> float:
        """Deterministic element-count proxy for the same ratio."""
        state = self.results["state-based"].processing_units()
        delta = self.results["delta-based"].processing_units()
        return delta / state if state else float("inf")

    def render(self) -> str:
        sample_points = 5
        rows = []
        state_series = self.cumulative_series("state-based")
        delta_series = self.cumulative_series("delta-based")
        step = max(1, len(state_series) // sample_points)
        for index in range(0, len(state_series), step):
            time_ms, state_total = state_series[index]
            delta_total = delta_series[min(index, len(delta_series) - 1)][1]
            rows.append((f"{time_ms / 1000:.0f}s", state_total, delta_total))
        table = format_table(
            ("time", "state-based (elems)", "delta-based (elems)"),
            rows,
            title=f"Figure 1 — GSet on partial mesh({self.nodes}, 4), {self.rounds} events/node",
        )
        summary = (
            f"\ntransmission(delta)/transmission(state) = {self.transmission_ratio():.3f}"
            f"\ncpu(delta)/cpu(state): wall={self.cpu_ratio_wall():.2f}x "
            f"proxy={self.cpu_ratio_proxy():.2f}x"
        )
        return table + summary


def run_figure1(nodes: int = 15, rounds: int = 100, degree: int = 4) -> Figure1Result:
    """Reproduce the Figure 1 experiment."""
    topology = partial_mesh(nodes, degree)
    results = run_suite(
        {"state-based": StateBased, "delta-based": classic},
        lambda: GSetWorkload(nodes, rounds),
        topology,
    )
    return Figure1Result(nodes=nodes, rounds=rounds, results=results)
