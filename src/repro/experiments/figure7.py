"""Figure 7 — transmission of GSet and GCounter, tree and mesh.

Transmission ratio of every synchronization mechanism with respect to
delta-based BP+RR, on the two 15-node topologies of Figure 6.  The
paper's observations, all of which this driver reproduces in shape:

* classic delta-based ≈ state-based (almost no improvement);
* on the tree, BP alone attains the best delta result;
* on the mesh, BP barely helps and RR does the heavy lifting;
* Scuttlebutt variants beat classic on GSet but lose on GCounter —
  treating deltas as opaque values, they cannot compress increments
  that a lattice join would collapse;
* op-based follows the same trend for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.grid import BASELINE, EvaluationGrid, run_grid
from repro.experiments.report import format_table


@dataclass
class Figure7Result:
    grid: EvaluationGrid

    def ratio(self, workload: str, topology: str, algorithm: str) -> float:
        return self.grid.cell(workload, topology).transmission_ratios()[algorithm]

    def rows(self) -> List[Tuple[str, str, str, float, float]]:
        return self.grid.rows("transmission")

    def render(self) -> str:
        return format_table(
            ("workload", "topology", "algorithm", "units", f"ratio vs {BASELINE}"),
            self.rows(),
            title=(
                f"Figure 7 — transmission, {self.grid.nodes} nodes, "
                f"{self.grid.rounds} events/node"
            ),
        )


def run_figure7(nodes: int = 15, rounds: int = 100) -> Figure7Result:
    """Reproduce the Figure 7 sweep: GSet and GCounter × tree and mesh."""
    return Figure7Result(run_grid(("gset", "gcounter"), nodes=nodes, rounds=rounds))
