"""Shared machinery for the micro-benchmark evaluation grids.

Figures 7, 8, and 10 sweep the same objects: a set of synchronization
algorithms × a set of Table I workloads × the two Figure 6 topologies,
normalized against delta-based BP+RR.  This module runs those sweeps
once and exposes the transmission and memory views the figure drivers
slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.sim.runner import ExperimentResult, run_suite
from repro.sim.topology import Topology, partial_mesh, tree
from repro.sync import (
    OpBased,
    Scuttlebutt,
    ScuttlebuttGC,
    StateBased,
    classic,
    delta_bp,
    delta_bp_rr,
    delta_rr,
)
from repro.workloads import make_micro_workload

#: The paper's evaluation baseline — everything is plotted against it.
BASELINE = "delta-based-bp-rr"

#: Every synchronization mechanism in the Section V-B comparison.
ALL_ALGORITHMS: Dict[str, Callable] = {
    "state-based": StateBased,
    "delta-based": classic,
    "delta-based-bp": delta_bp,
    "delta-based-rr": delta_rr,
    "delta-based-bp-rr": delta_bp_rr,
    "scuttlebutt": Scuttlebutt,
    "scuttlebutt-gc": ScuttlebuttGC,
    "op-based": OpBased,
}


def paper_topologies(nodes: int = 15) -> Dict[str, Topology]:
    """The two Figure 6 overlays at the requested size."""
    return {"tree": tree(nodes, 2), "mesh": partial_mesh(nodes, 4)}


@dataclass
class GridCell:
    """One workload × topology cell: all algorithms' results."""

    workload: str
    topology: str
    results: Dict[str, ExperimentResult]

    def transmission_ratios(self) -> Dict[str, float]:
        base = self.results[BASELINE].transmission_units()
        return {
            label: (result.transmission_units() / base if base else float("inf"))
            for label, result in self.results.items()
        }

    def memory_ratios(self) -> Dict[str, float]:
        base = self.results[BASELINE].average_memory_units()
        return {
            label: (result.average_memory_units() / base if base else float("inf"))
            for label, result in self.results.items()
        }


@dataclass
class EvaluationGrid:
    """The full sweep: cells indexed by (workload, topology)."""

    nodes: int
    rounds: int
    cells: Dict[Tuple[str, str], GridCell] = field(default_factory=dict)

    def cell(self, workload: str, topology: str) -> GridCell:
        return self.cells[(workload, topology)]

    def rows(self, view: str = "transmission") -> List[Tuple[str, str, str, float, float]]:
        """Flat rows: (workload, topology, algorithm, absolute, ratio)."""
        out = []
        for (workload, topology), cell in sorted(self.cells.items()):
            ratios = (
                cell.transmission_ratios()
                if view == "transmission"
                else cell.memory_ratios()
            )
            for label in sorted(cell.results):
                result = cell.results[label]
                absolute = (
                    result.transmission_units()
                    if view == "transmission"
                    else result.average_memory_units()
                )
                out.append((workload, topology, label, float(absolute), ratios[label]))
        return out


def run_grid(
    workloads: Sequence[str],
    *,
    nodes: int = 15,
    rounds: int = 100,
    topologies: Mapping[str, Topology] | None = None,
    algorithms: Mapping[str, Callable] | None = None,
) -> EvaluationGrid:
    """Run the evaluation grid and return every cell's results.

    Workloads are named by their Table I labels (``"gset"``,
    ``"gcounter"``, ``"gmap-30"`` …).  Every algorithm in a cell replays
    the identical update schedule.
    """
    topologies = dict(topologies) if topologies else paper_topologies(nodes)
    algorithms = dict(algorithms) if algorithms else dict(ALL_ALGORITHMS)
    grid = EvaluationGrid(nodes=nodes, rounds=rounds)
    for workload_name in workloads:
        for topo_name, topology in topologies.items():
            results = run_suite(
                algorithms,
                lambda: make_micro_workload(workload_name, nodes, rounds),
                topology,
            )
            grid.cells[(workload_name, topo_name)] = GridCell(
                workload=workload_name, topology=topo_name, results=results
            )
    return grid
