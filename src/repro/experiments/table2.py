"""Table II — Retwis workload characterization, verified against the code.

Table II fixes the operation mix (Follow 15 %, Post 35 %, Timeline
50 %) and the number of CRDT updates each operation performs (1,
1 + #followers, 0).  This driver generates a schedule, measures the
realized mix, and verifies the update-count rules by replaying
operations against synthetic states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.report import format_table
from repro.lattice import MapLattice, SetLattice
from repro.workloads import RetwisWorkload
from repro.workloads.retwis import followers_key


@dataclass
class Table2Result:
    total_ops: int
    follow_share: float
    post_share: float
    timeline_share: float
    follow_updates: int
    post_updates_without_followers: int
    post_updates_with_3_followers: int
    timeline_updates: int

    def mix_close_to_paper(self, tolerance: float = 0.03) -> bool:
        return (
            abs(self.follow_share - 0.15) < tolerance
            and abs(self.post_share - 0.35) < tolerance
            and abs(self.timeline_share - 0.50) < tolerance
        )

    def update_rules_hold(self) -> bool:
        return (
            self.follow_updates == 1
            and self.post_updates_without_followers == 1
            and self.post_updates_with_3_followers == 4  # 1 + #followers
            and self.timeline_updates == 0
        )

    def render(self) -> str:
        rows = [
            ("Follow", "1", f"{self.follow_share:.1%}"),
            ("Post Tweet", "1 + #Followers", f"{self.post_share:.1%}"),
            ("Timeline", "0", f"{self.timeline_share:.1%}"),
        ]
        table = format_table(
            ("operation", "#updates", "measured workload %"),
            rows,
            title=f"Table II — Retwis mix over {self.total_ops} generated operations",
        )
        return (
            table
            + f"\nmix within tolerance: {self.mix_close_to_paper()}"
            + f"\nupdate-count rules hold: {self.update_rules_hold()}"
        )


def run_table2(ops: int = 20_000, seed: int = 7) -> Table2Result:
    """Measure the generated mix and verify the update-count rules."""
    nodes, per_node = 10, 10
    rounds = max(1, ops // (nodes * per_node))
    workload = RetwisWorkload(
        nodes, users=1000, rounds=rounds, ops_per_node=per_node, seed=seed
    )
    stats = workload.stats

    class _Op:
        def __init__(self, kind, actor, target, counter):
            self.kind, self.actor, self.target, self.counter = kind, actor, target, counter

    follow_delta = workload._follow_mutator(_Op("follow", 1, 2, 1))(MapLattice())
    post_plain = workload._post_mutator(_Op("post", 5, 5, 2))(MapLattice())
    with_followers = MapLattice(
        {followers_key(5): SetLattice({"u0000001", "u0000002", "u0000003"})}
    )
    post_fanout = workload._post_mutator(_Op("post", 5, 5, 3))(with_followers)

    return Table2Result(
        total_ops=stats.total,
        follow_share=stats.follows / stats.total,
        post_share=stats.posts / stats.total,
        timeline_share=stats.timeline_reads / stats.total,
        follow_updates=follow_delta.size_units(),
        post_updates_without_followers=post_plain.size_units(),
        post_updates_with_3_followers=post_fanout.size_units(),
        timeline_updates=0,
    )
