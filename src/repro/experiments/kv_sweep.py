"""The store-level sweep: synchronization protocols under kv traffic.

The paper compares synchronizers on one replicated object; the sharded
store of :mod:`repro.kv` is where those comparisons meet deployment
reality — a keyspace of heterogeneous CRDTs, consistent-hash placement
with a replication factor, and per-shard anti-entropy.  This driver
replays one deterministic workload (mixed-type Zipf or Retwis) against
the same ring for each protocol and reports what crossed the wire,
what stayed resident, and how the scheduler behaved.

The headline result mirrors Figure 11 at store scale: state-based
pushes whole shard keyspaces every interval and delta-based BP+RR
ships only the δ-groups of the keys actually written, so its payload
bytes are a small fraction of state-based's on the identical schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.experiments.report import format_table, human_bytes
from repro.kv.antientropy import AntiEntropyConfig
from repro.kv.cluster import KVCluster
from repro.kv.ring import HashRing
from repro.kv.store import KVStore
from repro.sync import StateBased, keyed_bp_rr, keyed_classic
from repro.sync.merkle import MerkleSync
from repro.workloads.kv import KVRetwisWorkload, KVZipfWorkload

#: Protocols compared at store scale.  Delta-based variants run the
#: per-object (keyed) algorithm, matching the paper's Retwis deployment.
KV_ALGORITHMS = {
    "state-based": StateBased,
    "delta-based": keyed_classic,
    "delta-based-bp-rr": keyed_bp_rr,
    "merkle": MerkleSync,
}

DEFAULT_ALGORITHMS: Tuple[str, ...] = (
    "state-based",
    "delta-based",
    "delta-based-bp-rr",
    "merkle",
)


@dataclass(frozen=True)
class KVConfig:
    """One sweep cell: cluster shape, keyspace, workload, scheduling."""

    replicas: int = 16
    keys: int = 1000
    rounds: int = 20
    ops_per_node: int = 8
    users: int = 200
    zipf: float = 1.0
    replication: int = 3
    shards: int = 32
    seed: int = 42
    workload: str = "zipf"
    budget_bytes: Optional[int] = None
    repair_interval: int = 0
    batch: bool = True

    def ring(self) -> HashRing:
        return HashRing(
            range(self.replicas), n_shards=self.shards, replication=self.replication
        )

    def make_workload(self, ring: HashRing):
        if self.workload == "zipf":
            return KVZipfWorkload(
                ring,
                self.rounds,
                self.ops_per_node,
                keys=self.keys,
                zipf_coefficient=self.zipf,
                seed=self.seed,
            )
        if self.workload == "retwis":
            return KVRetwisWorkload(
                ring,
                self.rounds,
                self.ops_per_node,
                users=self.users,
                zipf_coefficient=self.zipf,
                seed=self.seed,
            )
        raise ValueError(f"unknown kv workload {self.workload!r} (zipf | retwis)")

    def antientropy(self) -> AntiEntropyConfig:
        return AntiEntropyConfig(
            budget_bytes=self.budget_bytes,
            repair_interval=self.repair_interval,
            batch=self.batch,
        )


@dataclass(frozen=True)
class KVCell:
    """Everything measured for one protocol."""

    algorithm: str
    converged: bool
    drain_rounds: int
    messages: int
    payload_bytes: int
    metadata_bytes: int
    avg_memory_bytes: float
    deferred: int
    repairs: int

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.metadata_bytes


@dataclass(frozen=True)
class KVSweepResult:
    """The sweep across protocols on one workload replay."""

    config: KVConfig
    workload: str
    total_updates: int
    cells: Mapping[str, KVCell]

    def cell(self, algorithm: str) -> KVCell:
        return self.cells[algorithm]

    def payload_bytes(self, algorithm: str) -> int:
        return self.cells[algorithm].payload_bytes

    def total_bytes(self, algorithm: str) -> int:
        return self.cells[algorithm].total_bytes

    def render(self) -> str:
        config = self.config
        header = (
            f"kv store sweep — {self.workload}, {config.replicas} replicas, "
            f"{config.shards} shards × rf {config.replication}, "
            f"{self.total_updates} updates, seed {config.seed}"
        )
        if config.budget_bytes is not None:
            header += f", budget {human_bytes(config.budget_bytes)}/tick"
        rows = []
        baseline = self.cells.get("delta-based-bp-rr")
        for label, cell in self.cells.items():
            ratio = (
                cell.total_bytes / baseline.total_bytes
                if baseline and baseline.total_bytes
                else float("nan")
            )
            rows.append(
                (
                    label,
                    cell.converged,
                    cell.messages,
                    human_bytes(cell.payload_bytes),
                    human_bytes(cell.metadata_bytes),
                    human_bytes(cell.total_bytes),
                    f"{ratio:.2f}x",
                    human_bytes(cell.avg_memory_bytes),
                    cell.drain_rounds,
                    cell.deferred,
                )
            )
        return format_table(
            (
                "algorithm",
                "converged",
                "messages",
                "payload",
                "metadata",
                "total",
                "vs bp+rr",
                "avg mem",
                "drain",
                "deferred",
            ),
            rows,
            title=header,
        )


def run_kv_cell(config: KVConfig, algorithm: str, workload=None) -> KVCell:
    """Run one protocol against the configured workload replay.

    ``workload`` lets a sweep share one pre-generated schedule across
    cells; schedules are immutable after construction, so replays stay
    identical either way.
    """
    ring = config.ring()
    if workload is None:
        workload = config.make_workload(ring)
    cluster = KVCluster(
        ring, KV_ALGORITHMS[algorithm], antientropy=config.antientropy()
    )
    cluster.run_rounds(workload.rounds, workload.updates_for)
    drain_rounds = cluster.drain()
    deferred = repairs = 0
    for node in cluster.nodes:
        assert isinstance(node, KVStore)
        stats = node.scheduler.stats()
        deferred += stats["deferred"]
        repairs += stats["repairs"]
    return KVCell(
        algorithm=algorithm,
        converged=cluster.converged(),
        drain_rounds=drain_rounds,
        messages=cluster.metrics.message_count,
        payload_bytes=cluster.metrics.total_payload_bytes(),
        metadata_bytes=cluster.metrics.total_metadata_bytes(),
        avg_memory_bytes=cluster.metrics.average_memory_bytes(),
        deferred=deferred,
        repairs=repairs,
    )


def run_kv_sweep(
    config: KVConfig = KVConfig(),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
) -> KVSweepResult:
    """Sweep protocols over identical workload replays on one ring."""
    unknown = [a for a in algorithms if a not in KV_ALGORITHMS]
    if unknown:
        raise ValueError(
            f"unknown algorithms {unknown} (known: {sorted(KV_ALGORITHMS)})"
        )
    workload = config.make_workload(config.ring())
    cells: Dict[str, KVCell] = {}
    for algorithm in algorithms:
        cells[algorithm] = run_kv_cell(config, algorithm, workload)
    return KVSweepResult(
        config=config,
        workload=workload.name,
        total_updates=workload.total_updates(),
        cells=cells,
    )
