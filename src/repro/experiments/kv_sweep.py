"""The store-level sweep: synchronization protocols under kv traffic.

The paper compares synchronizers on one replicated object; the sharded
store of :mod:`repro.kv` is where those comparisons meet deployment
reality — a keyspace of heterogeneous CRDTs, consistent-hash placement
with a replication factor, and per-shard anti-entropy.  This driver
replays one deterministic workload (mixed-type Zipf or Retwis) against
the same ring for each protocol and reports what crossed the wire,
what stayed resident, and how the scheduler behaved.

The headline result mirrors Figure 11 at store scale: state-based
pushes whole shard keyspaces every interval and delta-based BP+RR
ships only the δ-groups of the keys actually written, so its payload
bytes are a small fraction of state-based's on the identical schedule.

:func:`run_kv_repair_comparison` is the recovery-path counterpart: one
seeded fault schedule (partition with writes on both sides, heal, crash
with disk loss, recover) replayed under each **recovery strategy** at
equal per-shard convergence.  The strategy ladder
(:data:`RECOVERY_STRATEGIES`):

* ``blanket`` — full-state pushes on a timer (the redundant
  transmission the paper exists to eliminate);
* ``digest`` — divergence-driven repair: cold δ-paths are probed with
  one Merkle root and only the inflating join decomposition ships on
  mismatch — the ConflictSync argument (Gomes et al., PAPERS.md)
  measured on this store;
* ``wal`` — the rebuilt replica first replays its per-shard write-ahead
  log (:mod:`repro.wal`) locally, so digest repair covers only the
  divergence accrued *during* the downtime plus the log's torn tail;
* ``wal+repair`` — replay as above, then every δ-path is marked suspect
  and verified by immediate root probes (duplicate exchanges on
  genuinely divergent paths buy certainty even if the peers' own
  suspicion signals were lost).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.experiments.report import format_table, human_bytes
from repro.kv.antientropy import AntiEntropyConfig
from repro.kv.cluster import KVCluster
from repro.kv.ring import HashRing
from repro.sync import StateBased, keyed_bp_rr, keyed_classic
from repro.sync.merkle import MerkleSync
from repro.wal import WalConfig
from repro.workloads.kv import KVRetwisWorkload, KVZipfWorkload

#: Protocols compared at store scale.  Delta-based variants run the
#: per-object (keyed) algorithm, matching the paper's Retwis deployment.
KV_ALGORITHMS = {
    "state-based": StateBased,
    "delta-based": keyed_classic,
    "delta-based-bp-rr": keyed_bp_rr,
    "merkle": MerkleSync,
}

DEFAULT_ALGORITHMS: Tuple[str, ...] = (
    "state-based",
    "delta-based",
    "delta-based-bp-rr",
    "merkle",
)

#: Recovery strategies compared by the fault replay: row label →
#: (scheduler repair mode, cluster lose-state recovery policy).
RECOVERY_STRATEGIES: Dict[str, Tuple[str, str]] = {
    "blanket": ("blanket", "repair"),
    "digest": ("digest", "repair"),
    "wal": ("digest", "wal"),
    "wal+repair": ("digest", "wal+repair"),
}

DEFAULT_STRATEGIES: Tuple[str, ...] = tuple(RECOVERY_STRATEGIES)


@dataclass(frozen=True)
class KVConfig:
    """One sweep cell: cluster shape, keyspace, workload, scheduling."""

    replicas: int = 16
    keys: int = 1000
    rounds: int = 20
    ops_per_node: int = 8
    users: int = 200
    zipf: float = 1.0
    replication: int = 3
    shards: int = 32
    seed: int = 42
    workload: str = "zipf"
    budget_bytes: Optional[int] = None
    repair_interval: int = 0
    repair_fanout: int = 1
    repair_mode: str = "blanket"
    batch: bool = True
    #: ``"sim"`` replays on the deterministic simulator (size-model
    #: bytes); ``"tcp"`` runs the same replay over localhost asyncio
    #: TCP sockets (measured wire bytes of the envelope codec);
    #: ``"proc"`` spawns one OS process per replica
    #: (:class:`~repro.serve.cluster.ProcessCluster`) — same wire
    #: format as ``"tcp"``, plus real process isolation, advisory-
    #: locked WAL directories, and SIGKILL crashes.
    transport: str = "sim"
    #: Execution model: ``"rounds"`` steps barrier-synchronized
    #: intervals (every figure in the paper); ``"free"`` drops the
    #: barrier and runs each replica on its own drifting timer
    #: (:class:`~repro.net.freerun.FreeRunTransport`), making
    #: convergence lag a measurement.  Free-running requires the
    #: event-driven engine — combining it with ``transport="tcp"`` is
    #: rejected at construction rather than left to hang the socket
    #: round loop.
    execution: str = "rounds"
    #: Free-running only: per-replica timer period skew (fraction of
    #: the synchronization interval) and the seed drawing each
    #: replica's phase/period.
    tick_jitter: float = 0.05
    tick_seed: int = 0
    #: Lose-state recovery policy (``repair`` | ``wal`` | ``wal+repair``).
    #: The WAL policies give every store a durable per-shard delta log.
    recovery: str = "repair"
    #: Per-shard log compaction threshold (``None`` disables).
    wal_compact_bytes: Optional[int] = 64 * 1024
    #: Structured-trace output path (JSONL); ``None`` disables tracing.
    #: One file covers the whole driver run — each cell is bracketed by
    #: ``cell-start``/``cell-end`` events, so ``repro trace report``
    #: renders one table per cell and the byte totals of the tables can
    #: be re-derived from the trace alone.
    trace: Optional[str] = None

    def __post_init__(self) -> None:
        if self.execution not in ("rounds", "free"):
            raise ValueError(
                f"unknown execution model {self.execution!r} (rounds | free)"
            )
        if self.execution == "free" and self.transport == "tcp":
            raise ValueError(
                'execution="free" needs the deterministic event engine and '
                'cannot run over transport="tcp": the TCP round loop settles '
                "(waits for the network to quiesce) after every round, which "
                "is exactly the barrier free-running removes. Use "
                'transport="sim" with execution="free", or drop to '
                'execution="rounds" for TCP.'
            )
        if self.execution == "free" and self.transport == "proc":
            raise ValueError(
                'execution="free" cannot run over transport="proc": replica '
                "processes deliberately have no timers of their own (the "
                "controller's TICK is the only anti-entropy trigger, keeping "
                'process runs round-comparable).  Use transport="sim" for '
                "free-running."
            )
        if self.transport == "proc" and self.trace is not None:
            # Per-process trace files cannot share one JSONL sink; the
            # proc transport writes a *directory* of them per cell.
            if os.path.isfile(self.trace):
                raise ValueError(
                    'transport="proc" writes a trace directory (one file '
                    f"per replica process), but {self.trace!r} is an "
                    "existing file"
                )

    def resolved_transport(self) -> str:
        """The transport name the cluster should actually run on."""
        return "free" if self.execution == "free" else self.transport

    def cluster_config(self):
        """Cluster knobs derived from this cell (``None`` = defaults).

        Only free-running cells need a non-default config (the timer
        drift parameters); round-stepped cells return ``None`` so the
        cluster builds its usual default, keeping those code paths
        byte-identical to the pre-knob harness.
        """
        if self.execution != "free":
            return None
        from repro.sim.network import ClusterConfig
        from repro.sim.topology import full_mesh

        return ClusterConfig(
            topology=full_mesh(self.replicas),
            tick_jitter=self.tick_jitter,
            tick_seed=self.tick_seed,
        )

    def ring(self) -> HashRing:
        return HashRing(
            range(self.replicas), n_shards=self.shards, replication=self.replication
        )

    def make_workload(self, ring: HashRing):
        if self.workload == "zipf":
            return KVZipfWorkload(
                ring,
                self.rounds,
                self.ops_per_node,
                keys=self.keys,
                zipf_coefficient=self.zipf,
                seed=self.seed,
            )
        if self.workload == "retwis":
            return KVRetwisWorkload(
                ring,
                self.rounds,
                self.ops_per_node,
                users=self.users,
                zipf_coefficient=self.zipf,
                seed=self.seed,
            )
        raise ValueError(f"unknown kv workload {self.workload!r} (zipf | retwis)")

    def antientropy(self) -> AntiEntropyConfig:
        return AntiEntropyConfig(
            budget_bytes=self.budget_bytes,
            repair_interval=self.repair_interval,
            repair_fanout=self.repair_fanout,
            repair_mode=self.repair_mode,
            batch=self.batch,
        )

    def wal_config(self) -> WalConfig:
        return WalConfig(compact_bytes=self.wal_compact_bytes)


@dataclass(frozen=True)
class KVCell:
    """Everything measured for one protocol."""

    algorithm: str
    converged: bool
    drain_rounds: int
    messages: int
    payload_bytes: int
    metadata_bytes: int
    avg_memory_bytes: float
    deferred: int
    repairs: int
    probes: int = 0
    repair_payload_bytes: int = 0
    repair_metadata_bytes: int = 0
    messages_dropped: int = 0
    messages_severed: int = 0
    #: Write-ahead-log accounting (all zero under ``recovery="repair"``).
    wal_committed_bytes: int = 0
    wal_compactions: int = 0
    wal_replayed_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.metadata_bytes

    @property
    def repair_bytes(self) -> int:
        """Everything the repair path moved: payloads plus digests."""
        return self.repair_payload_bytes + self.repair_metadata_bytes


@dataclass(frozen=True)
class KVSweepResult:
    """The sweep across protocols on one workload replay."""

    config: KVConfig
    workload: str
    total_updates: int
    cells: Mapping[str, KVCell]

    def cell(self, algorithm: str) -> KVCell:
        return self.cells[algorithm]

    def payload_bytes(self, algorithm: str) -> int:
        return self.cells[algorithm].payload_bytes

    def total_bytes(self, algorithm: str) -> int:
        return self.cells[algorithm].total_bytes

    def render(self) -> str:
        config = self.config
        header = (
            f"kv store sweep — {self.workload}, {config.replicas} replicas, "
            f"{config.shards} shards × rf {config.replication}, "
            f"{self.total_updates} updates, seed {config.seed}"
        )
        if config.budget_bytes is not None:
            header += f", budget {human_bytes(config.budget_bytes)}/tick"
        if config.transport != "sim":
            header += f", transport {config.transport} (measured wire bytes)"
        if config.execution == "free":
            header += (
                f", free-running (jitter {config.tick_jitter:g}, "
                f"tick seed {config.tick_seed})"
            )
        rows = []
        baseline = self.cells.get("delta-based-bp-rr")
        for label, cell in self.cells.items():
            ratio = (
                cell.total_bytes / baseline.total_bytes
                if baseline and baseline.total_bytes
                else float("nan")
            )
            rows.append(
                (
                    label,
                    cell.converged,
                    cell.messages,
                    human_bytes(cell.payload_bytes),
                    human_bytes(cell.metadata_bytes),
                    human_bytes(cell.total_bytes),
                    f"{ratio:.2f}x",
                    human_bytes(cell.avg_memory_bytes),
                    cell.drain_rounds,
                    cell.deferred,
                )
            )
        return format_table(
            (
                "algorithm",
                "converged",
                "messages",
                "payload",
                "metadata",
                "total",
                "vs bp+rr",
                "avg mem",
                "drain",
                "deferred",
            ),
            rows,
            title=header,
        )


def _open_tracer(config: KVConfig):
    """The driver-owned tracer for ``config.trace`` (or ``None``).

    The proc transport gets no driver tracer: each replica process
    writes its own file into a per-cell directory and the controller
    contributes ``controller.jsonl`` (cell markers included), merged at
    read time by :func:`repro.obs.read_trace_dir`.
    """
    if config.trace is None or config.resolved_transport() == "proc":
        return None
    from repro.obs.trace import FileTraceSink, Tracer

    return Tracer(FileTraceSink(config.trace))


def _cell_span(cluster: KVCluster, tracer, label: str, extra: dict):
    """Bracket one cell in the trace: start marker now, end at call."""
    if tracer is not None:
        tracer.emit("cell-start", label=label, extra=extra)

    def end() -> None:
        if tracer is None:
            return
        if cluster.timers is not None:
            tracer.emit("timing", label=label, extra=cluster.timers.snapshot())
        tracer.emit("cell-end", label=label)

    return end


def run_kv_cell(
    config: KVConfig, algorithm: str, workload=None, tracer=None
) -> KVCell:
    """Run one protocol against the configured workload replay.

    ``workload`` lets a sweep share one pre-generated schedule across
    cells; schedules are immutable after construction, so replays stay
    identical either way.  ``tracer`` is a sweep-owned tracer shared
    across cells; a standalone call honours ``config.trace`` itself.
    """
    ring = config.ring()
    if workload is None:
        workload = config.make_workload(ring)
    proc = config.resolved_transport() == "proc"
    own_tracer = tracer is None and config.trace is not None and not proc
    if own_tracer:
        tracer = _open_tracer(config)
    if proc:
        from repro.experiments.kv_serve import build_process_cluster

        cluster = build_process_cluster(config, algorithm)
        cell_tracer = cluster.tracer
    else:
        cluster = KVCluster(
            ring,
            KV_ALGORITHMS[algorithm],
            antientropy=config.antientropy(),
            config=config.cluster_config(),
            transport=config.resolved_transport(),
            recovery=config.recovery,
            wal_config=config.wal_config() if config.recovery != "repair" else None,
            trace=tracer,
        )
        cell_tracer = tracer
    end_cell = _cell_span(
        cluster, cell_tracer, algorithm, {"workload": workload.name}
    )
    try:
        cluster.run_rounds(workload.rounds, workload.updates_for)
        drain_rounds = cluster.drain()
        end_cell()
        return _measure_cell(cluster, algorithm, drain_rounds)
    finally:
        cluster.close()
        if own_tracer:
            tracer.sink.close()


def _measure_cell(cluster: KVCluster, algorithm: str, drain_rounds: int) -> KVCell:
    stats = cluster.scheduler_stats()
    wal = cluster.wal_stats()
    return KVCell(
        algorithm=algorithm,
        converged=cluster.converged(),
        drain_rounds=drain_rounds,
        messages=cluster.metrics.message_count,
        payload_bytes=cluster.metrics.total_payload_bytes(),
        metadata_bytes=cluster.metrics.total_metadata_bytes(),
        avg_memory_bytes=cluster.metrics.average_memory_bytes(),
        deferred=stats["deferred"],
        repairs=stats["repairs"],
        probes=stats["probes"],
        repair_payload_bytes=stats["repair_payload_bytes"],
        repair_metadata_bytes=stats["repair_metadata_bytes"],
        messages_dropped=cluster.messages_dropped,
        messages_severed=cluster.messages_severed,
        wal_committed_bytes=wal.get("wal_committed_bytes", 0),
        wal_compactions=wal.get("wal_compactions", 0),
        wal_replayed_bytes=wal.get("wal_replayed_bytes", 0),
    )


@dataclass(frozen=True)
class KVRepairComparison:
    """Recovery strategies compared on one seeded fault replay."""

    config: KVConfig
    algorithm: str
    workload: str
    total_updates: int
    cells: Mapping[str, KVCell]

    def cell(self, mode: str) -> KVCell:
        return self.cells[mode]

    def render(self) -> str:
        config = self.config
        header = (
            f"kv repair comparison — {self.algorithm} inner protocol, "
            f"{config.replicas} replicas, {config.shards} shards × rf "
            f"{config.replication}, partition + heal + crash(lose_state), "
            f"repair interval {config.repair_interval}, seed {config.seed}"
        )
        if config.transport != "sim":
            header += f", transport {config.transport} (measured wire bytes)"
        rows = []
        for mode, cell in self.cells.items():
            rows.append(
                (
                    mode,
                    cell.converged,
                    cell.drain_rounds,
                    cell.repairs,
                    cell.probes,
                    human_bytes(cell.repair_payload_bytes),
                    human_bytes(cell.repair_metadata_bytes),
                    human_bytes(cell.repair_bytes),
                    human_bytes(cell.wal_replayed_bytes),
                    human_bytes(cell.total_bytes),
                    cell.messages_severed,
                    cell.messages_dropped,
                )
            )
        return format_table(
            (
                "recovery",
                "converged",
                "drain",
                "repairs",
                "probes",
                "repair payload",
                "repair digests",
                "repair total",
                "wal replay",
                "wire total",
                "severed",
                "dropped",
            ),
            rows,
            title=header,
        )


def run_kv_repair_cell(
    config: KVConfig, algorithm: str, mode: str, workload=None, tracer=None
) -> KVCell:
    """One fault replay: partition with writes on both sides, heal,
    crash with disk loss, recover, drain to per-shard convergence.

    ``mode`` names a :data:`RECOVERY_STRATEGIES` row.  The schedule is
    fully deterministic given ``config.seed``, so every strategy sees
    byte-identical update traffic and divergence; only the recovery
    path differs.
    """
    if config.repair_interval < 1:
        raise ValueError(
            "the fault scenario depends on the recovery path: set "
            "repair_interval >= 1 (0 disables repair entirely)"
        )
    try:
        repair_mode, recovery = RECOVERY_STRATEGIES[mode]
    except KeyError:
        raise ValueError(
            f"unknown recovery strategy {mode!r} "
            f"(known: {', '.join(RECOVERY_STRATEGIES)})"
        ) from None
    ring = config.ring()
    if workload is None:
        workload = config.make_workload(ring)
    antientropy = AntiEntropyConfig(
        budget_bytes=config.budget_bytes,
        repair_interval=config.repair_interval,
        repair_fanout=config.repair_fanout,
        repair_mode=repair_mode,
        batch=config.batch,
    )
    proc = config.resolved_transport() == "proc"
    own_tracer = tracer is None and config.trace is not None and not proc
    if own_tracer:
        tracer = _open_tracer(config)
    if proc:
        from repro.experiments.kv_serve import build_process_cluster

        cluster = build_process_cluster(
            config,
            algorithm,
            antientropy=antientropy,
            recovery=recovery,
            trace_label=mode,
        )
        cell_tracer = cluster.tracer
    else:
        cluster = KVCluster(
            ring,
            KV_ALGORITHMS[algorithm],
            antientropy=antientropy,
            config=config.cluster_config(),
            transport=config.resolved_transport(),
            recovery=recovery,
            wal_config=config.wal_config() if recovery != "repair" else None,
            trace=tracer,
        )
        cell_tracer = tracer
    end_cell = _cell_span(
        cluster, cell_tracer, mode, {"algorithm": algorithm, "recovery": recovery}
    )
    try:
        phase = max(1, workload.rounds // 3)
        updates = workload.updates_for
        # Healthy traffic, then a partition that keeps absorbing writes on
        # both sides (synchronization across the cut is refused and the
        # flushed δ-groups are gone), then heal.
        cluster.run_rounds(phase, updates)
        cluster.partition(range(config.replicas // 2))
        for round_index in range(phase, 2 * phase):
            cluster.run_round(lambda node, r=round_index: updates(r, node))
        cluster.heal()
        # A replica loses its disk while the remaining schedule plays out.
        victim = config.replicas - 1
        cluster.crash(victim, lose_state=True)
        for round_index in range(2 * phase, workload.rounds):
            cluster.run_round(lambda node, r=round_index: updates(r, node))
        cluster.recover(victim)
        drain_rounds = cluster.drain()
        end_cell()
        return _measure_cell(cluster, algorithm, drain_rounds)
    finally:
        cluster.close()
        if own_tracer:
            tracer.sink.close()


def run_kv_repair_comparison(
    config: KVConfig = KVConfig(repair_interval=4, repair_fanout=8),
    algorithm: str = "delta-based-bp-rr",
    modes: Sequence[str] = DEFAULT_STRATEGIES,
) -> KVRepairComparison:
    """Replay the identical fault schedule under each recovery strategy."""
    if algorithm not in KV_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r} (known: {sorted(KV_ALGORITHMS)})"
        )
    workload = config.make_workload(config.ring())
    tracer = _open_tracer(config)
    cells: Dict[str, KVCell] = {}
    try:
        for mode in modes:
            cells[mode] = run_kv_repair_cell(
                config, algorithm, mode, workload, tracer=tracer
            )
    finally:
        if tracer is not None:
            tracer.sink.close()
    return KVRepairComparison(
        config=config,
        algorithm=algorithm,
        workload=workload.name,
        total_updates=workload.total_updates(),
        cells=cells,
    )


def run_kv_sweep(
    config: KVConfig = KVConfig(),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
) -> KVSweepResult:
    """Sweep protocols over identical workload replays on one ring."""
    unknown = [a for a in algorithms if a not in KV_ALGORITHMS]
    if unknown:
        raise ValueError(
            f"unknown algorithms {unknown} (known: {sorted(KV_ALGORITHMS)})"
        )
    workload = config.make_workload(config.ring())
    tracer = _open_tracer(config)
    cells: Dict[str, KVCell] = {}
    try:
        for algorithm in algorithms:
            cells[algorithm] = run_kv_cell(
                config, algorithm, workload, tracer=tracer
            )
    finally:
        if tracer is not None:
            tracer.sink.close()
    return KVSweepResult(
        config=config,
        workload=workload.name,
        total_updates=workload.total_updates(),
        cells=cells,
    )
