"""Appendix B — the Figure 7 comparison on causal (add/remove) data.

The paper evaluates grow-only types and argues (Appendix B) that its
machinery covers the CRDTs used in practice.  This driver runs the
exact Figure 7 protocol grid — every synchronization mechanism on the
tree and mesh of Figure 6 — over an add-wins OR-set churn workload,
where deltas must carry causal-context tombstones, not just payload.

Expected shape (checked by ``benchmarks/bench_ablation_causal.py``):
the paper's ordering is preserved — classic ≈ state-based on the mesh,
RR dominant with cycles, BP+RR best — with one new, quantified effect:
on the acyclic tree BP alone no longer matches BP+RR exactly (it does
for GSet), because re-adds and removals cover previously-shipped dots
and that context slice stays redundant downstream even without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.grid import ALL_ALGORITHMS, BASELINE, paper_topologies
from repro.experiments.report import format_table
from repro.sim.runner import ExperimentResult, run_suite
from repro.workloads.causal import AWSetChurnWorkload


@dataclass
class AppendixBResult:
    """The causal-churn grid: topology → algorithm → measurements."""

    nodes: int
    rounds: int
    add_ratio: float
    results: Dict[Tuple[str, str], ExperimentResult]

    def units(self, topology: str, algorithm: str) -> int:
        return self.results[(topology, algorithm)].transmission_units()

    def ratio(self, topology: str, algorithm: str) -> float:
        return self.units(topology, algorithm) / self.units(topology, BASELINE)

    def rows(self) -> List[Tuple[str, str, int, float]]:
        out = []
        for topology in ("tree", "mesh"):
            for algorithm in sorted(ALL_ALGORITHMS):
                out.append(
                    (
                        topology,
                        algorithm,
                        self.units(topology, algorithm),
                        self.ratio(topology, algorithm),
                    )
                )
        return out

    def render(self) -> str:
        return format_table(
            ("topology", "algorithm", "units", f"ratio vs {BASELINE}"),
            self.rows(),
            title=(
                f"Appendix B — AWSet churn (add ratio {self.add_ratio}), "
                f"{self.nodes} nodes, {self.rounds} events/node"
            ),
        )


def run_appendixb(
    nodes: int = 15, rounds: int = 30, add_ratio: float = 0.7
) -> AppendixBResult:
    """Run the full protocol grid over the AWSet churn workload."""
    results: Dict[Tuple[str, str], ExperimentResult] = {}
    for topology_name, topology in paper_topologies(nodes).items():
        suite = run_suite(
            ALL_ALGORITHMS,
            lambda: AWSetChurnWorkload(nodes, rounds, add_ratio=add_ratio),
            topology,
        )
        for algorithm, result in suite.items():
            results[(topology_name, algorithm)] = result
    return AppendixBResult(
        nodes=nodes, rounds=rounds, add_ratio=add_ratio, results=results
    )
