"""Serving-cluster experiments: the proc transport and quorum reads.

Two entry points:

* :func:`build_process_cluster` adapts a :class:`~repro.experiments.
  kv_sweep.KVConfig` cell to a :class:`~repro.serve.cluster.
  ProcessCluster`, which exposes the same driver surface as
  :class:`~repro.kv.cluster.KVCluster` — this is what lets
  ``transport="proc"`` slot into :func:`~repro.experiments.kv_sweep.
  run_kv_cell` and the fault replay unchanged: the identical workload
  schedule and fault script, but every replica a real OS process and
  every byte a measured wire byte.

* :func:`run_kv_quorum` is the client's-eye experiment the in-process
  harness cannot run: a :class:`~repro.serve.loadgen.LoadGenerator`
  drives a :class:`~repro.serve.client.KVClient` against a live
  process cluster under different read/write quorum settings, and the
  table reports what changed *for the client* — latency percentiles
  (each extra quorum member is another synchronous round trip) against
  observed staleness (``r = 1`` reads routed randomly across owners
  lose session monotonicity; a majority read quorum with ``r + w >
  rf`` restores it).  Read-repair traffic is counted separately on
  both sides: the client counts the joins it pushed, the replicas'
  ``scheduler.read_repairs`` / ``scheduler.read_repair_payload_bytes``
  counters what they absorbed — so repair cost is attributable, not
  smeared into anti-entropy totals.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.experiments.kv_sweep import KVConfig
from repro.experiments.report import format_table, human_bytes
from repro.kv.antientropy import AntiEntropyConfig


def build_process_cluster(
    config: KVConfig,
    algorithm: str,
    *,
    antientropy: Optional[AntiEntropyConfig] = None,
    recovery: Optional[str] = None,
    trace_label: Optional[str] = None,
    run_dir: Optional[str] = None,
):
    """A :class:`ProcessCluster` shaped like one sweep cell.

    ``antientropy`` / ``recovery`` override the config's own (the fault
    replay derives them per strategy row).  With tracing on, each cell
    gets its own subdirectory of ``config.trace`` (per-process trace
    files cannot share one file the way in-process cells share one
    sink), named by ``trace_label``; render one with
    ``repro trace report <trace>/<label>``.
    """
    from repro.serve.cluster import ProcessCluster

    trace_dir = None
    if config.trace is not None:
        trace_dir = os.path.join(config.trace, trace_label or algorithm)
    return ProcessCluster(
        config.replicas,
        shards=config.shards,
        replication=config.replication,
        algorithm=algorithm,
        antientropy=antientropy if antientropy is not None else config.antientropy(),
        recovery=recovery if recovery is not None else config.recovery,
        wal_compact_bytes=config.wal_compact_bytes,
        run_dir=run_dir,
        trace_dir=trace_dir,
    )


# ---------------------------------------------------------------------------
# The quorum experiment.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QuorumConfig:
    """One quorum comparison: cluster shape and client load."""

    replicas: int = 4
    shards: int = 16
    replication: int = 3
    algorithm: str = "delta-based-bp-rr"
    recovery: str = "wal"
    #: Client load: ``batches`` bursts of ``ops_per_batch`` operations,
    #: one anti-entropy round between bursts — so writes have a window
    #: in which only their write quorum has seen them, which is the
    #: window staleness lives in.
    keys: int = 48
    batches: int = 6
    ops_per_batch: int = 30
    write_ratio: float = 0.5
    zipf: float = 1.0
    seed: int = 7
    #: Trace directory (``None`` disables); each cell gets a subdir.
    trace: Optional[str] = None

    @property
    def majority(self) -> int:
        return self.replication // 2 + 1


@dataclass(frozen=True)
class QuorumCell:
    """One (r, w, route) setting, measured client- and server-side."""

    label: str
    r: int
    w: int
    route: str
    ops: int
    failed_ops: int
    get_p50_ms: float
    get_p99_ms: float
    put_p50_ms: float
    put_p99_ms: float
    stale_session_reads: int
    divergent_reads: int
    client_read_repairs: int
    server_read_repairs: int
    read_repair_payload_bytes: int
    messages: int
    payload_bytes: int


@dataclass(frozen=True)
class KVQuorumResult:
    """The comparison across quorum settings on identical load."""

    config: QuorumConfig
    cells: Mapping[str, QuorumCell]

    def cell(self, label: str) -> QuorumCell:
        return self.cells[label]

    def render(self) -> str:
        config = self.config
        header = (
            f"kv quorum reads — {config.replicas} process replicas, "
            f"{config.shards} shards × rf {config.replication}, "
            f"{config.algorithm}, {config.batches}×{config.ops_per_batch} ops "
            f"(write ratio {config.write_ratio:g}), seed {config.seed}"
        )
        rows = []
        for cell in self.cells.values():
            rows.append(
                (
                    cell.label,
                    f"{cell.r}/{cell.w}",
                    cell.route,
                    f"{cell.get_p50_ms:.2f}",
                    f"{cell.get_p99_ms:.2f}",
                    f"{cell.put_p50_ms:.2f}",
                    f"{cell.put_p99_ms:.2f}",
                    cell.stale_session_reads,
                    cell.divergent_reads,
                    cell.server_read_repairs,
                    human_bytes(cell.read_repair_payload_bytes),
                )
            )
        return format_table(
            (
                "setting",
                "r/w",
                "route",
                "get p50 ms",
                "get p99 ms",
                "put p50 ms",
                "put p99 ms",
                "stale reads",
                "divergent",
                "repairs",
                "repair bytes",
            ),
            rows,
            title=header,
        )


#: The comparison rows: label → (r, w, read route).  ``r1-random`` is
#: the staleness-visible baseline; ``r1-primary`` shows that routing
#: every read at the coordinator hides most of it without any quorum;
#: ``majority`` is the ``r + w > rf`` setting that closes the contract.
def _quorum_settings(config: QuorumConfig) -> Dict[str, Tuple[int, int, str]]:
    majority = config.majority
    return {
        "r1-random": (1, 1, "random"),
        "r1-primary": (1, 1, "primary"),
        "majority": (majority, majority, "random"),
    }


def run_kv_quorum_cell(
    config: QuorumConfig, label: str, r: int, w: int, route: str
) -> QuorumCell:
    """One setting: fresh cluster, identical seeded load, full teardown."""
    from repro.serve.client import KVClient
    from repro.serve.cluster import ProcessCluster
    from repro.serve.loadgen import LoadGenerator

    trace_dir = (
        os.path.join(config.trace, label) if config.trace is not None else None
    )
    cluster = ProcessCluster(
        config.replicas,
        shards=config.shards,
        replication=config.replication,
        algorithm=config.algorithm,
        recovery=config.recovery,
        trace_dir=trace_dir,
    )
    try:
        client = KVClient(
            cluster.client_addresses(),
            replicas=cluster.replicas,
            shards=config.shards,
            replication=config.replication,
            r=r,
            w=w,
            route=route,
            seed=config.seed,
        )
        with client:
            generator = LoadGenerator(
                client,
                keys=config.keys,
                write_ratio=config.write_ratio,
                zipf_coefficient=config.zipf,
                seed=config.seed,
            )
            for _ in range(config.batches):
                for _ in range(config.ops_per_batch):
                    generator.run_op()
                # One anti-entropy round between bursts: replication
                # catches up, so the *next* burst's staleness is due to
                # the quorum setting, not an unbounded backlog.
                cluster.run_round(None)
            report = generator.report()
        cluster.drain()
        stats = cluster.scheduler_stats()
        return QuorumCell(
            label=label,
            r=r,
            w=w,
            route=route,
            ops=report.ops,
            failed_ops=report.failed_ops,
            get_p50_ms=report.get_latency_ms["p50"],
            get_p99_ms=report.get_latency_ms["p99"],
            put_p50_ms=report.put_latency_ms["p50"],
            put_p99_ms=report.put_latency_ms["p99"],
            stale_session_reads=report.stale_session_reads,
            divergent_reads=report.divergent_reads,
            client_read_repairs=report.read_repairs,
            server_read_repairs=int(stats.get("read_repairs", 0)),
            read_repair_payload_bytes=int(
                stats.get("read_repair_payload_bytes", 0)
            ),
            messages=cluster.metrics.message_count,
            payload_bytes=cluster.metrics.total_payload_bytes(),
        )
    finally:
        cluster.close()


def run_kv_quorum(
    config: QuorumConfig = QuorumConfig(),
    settings: Optional[Sequence[str]] = None,
) -> KVQuorumResult:
    """Run the identical seeded client load under each quorum setting."""
    table = _quorum_settings(config)
    chosen = tuple(table) if settings is None else tuple(settings)
    unknown = [label for label in chosen if label not in table]
    if unknown:
        raise ValueError(
            f"unknown quorum settings {unknown} (known: {list(table)})"
        )
    cells: Dict[str, QuorumCell] = {}
    for label in chosen:
        r, w, route = table[label]
        cells[label] = run_kv_quorum_cell(config, label, r, w, route)
    return KVQuorumResult(config=config, cells=cells)
