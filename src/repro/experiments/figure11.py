"""Figure 11 — Retwis transmission bandwidth and memory vs contention.

Classic delta-based against delta-based BP+RR over the Retwis workload
at Zipf coefficients 0.5–1.5, reporting per-node transmission bandwidth
and per-node memory, split into the first and second half of the
experiment (the paper plots both halves on a log scale).

The paper's shape: at low contention (0.5) updates spread across many
objects, few objects see concurrent updates between rounds, and the
classic inflation check performs almost optimally; as contention rises,
classic re-buffers and re-ships ever-fatter δ-groups for the hot
objects while BP+RR keeps extracting only the novelty, so the gap
widens by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.experiments.report import format_table, human_bytes
from repro.experiments.retwis_sweep import (
    PAPER_COEFFICIENTS,
    RetwisConfig,
    RetwisRun,
    SweepKey,
    run_retwis_sweep,
)


@dataclass
class Figure11Result:
    config: RetwisConfig
    coefficients: Sequence[float]
    runs: Dict[SweepKey, RetwisRun]

    def bandwidth(self, coefficient: float, algorithm: str) -> float:
        return self.runs[(coefficient, algorithm)].bandwidth_per_node_per_sec()

    def memory(self, coefficient: float, algorithm: str) -> float:
        return self.runs[(coefficient, algorithm)].memory_bytes_per_node()

    def bandwidth_gap(self, coefficient: float) -> float:
        """classic / BP+RR transmission — the Figure 11 headline."""
        best = self.bandwidth(coefficient, "delta-based-bp-rr")
        return self.bandwidth(coefficient, "delta-based") / best if best else float("inf")

    def rows(self) -> List[Tuple]:
        out = []
        for coefficient in self.coefficients:
            for algorithm in ("delta-based", "delta-based-bp-rr"):
                run = self.runs[(coefficient, algorithm)]
                first, second = run.halves()
                out.append(
                    (
                        f"{coefficient:g}",
                        algorithm,
                        human_bytes(first.bytes_per_node_per_sec) + "/s",
                        human_bytes(second.bytes_per_node_per_sec) + "/s",
                        human_bytes(first.memory_bytes_per_node),
                        human_bytes(second.memory_bytes_per_node),
                    )
                )
        return out

    def render(self) -> str:
        return format_table(
            ("zipf", "algorithm", "bw/node (1st half)", "bw/node (2nd half)",
             "mem/node (1st half)", "mem/node (2nd half)"),
            self.rows(),
            title=(
                f"Figure 11 — Retwis, mesh({self.config.nodes}, {self.config.degree}), "
                f"{self.config.users} users, {self.config.rounds} rounds"
            ),
        )


def run_figure11(
    coefficients: Sequence[float] = PAPER_COEFFICIENTS,
    config: RetwisConfig = RetwisConfig(),
) -> Figure11Result:
    """Reproduce the Figure 11 contention sweep."""
    runs = run_retwis_sweep(coefficients, config)
    return Figure11Result(config=config, coefficients=tuple(coefficients), runs=runs)
