"""Plain-text report rendering shared by all experiment drivers.

Experiment drivers return structured rows; these helpers render them as
aligned tables on stdout — the benchmark harness prints one table per
paper figure so a run's output reads like the paper's evaluation
section.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render rows as a fixed-width table.

    Floats are shown with three significant decimals; everything else
    via ``str``.
    """
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append([_cell(value) for value in row])
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)


def format_ratio_map(ratios: Mapping[str, float], baseline: str) -> str:
    """One line per algorithm: its ratio against the baseline."""
    lines = [f"(ratios w.r.t. {baseline})"]
    for label in sorted(ratios, key=lambda k: ratios[k]):
        lines.append(f"  {label:20s} {ratios[label]:8.3f}x")
    return "\n".join(lines)


def human_bytes(count: float) -> str:
    """1234567 → '1.18 MiB' — used in the Retwis bandwidth reports."""
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if size < 1024 or unit == "TiB":
            return f"{size:.2f} {unit}"
        size /= 1024
    raise AssertionError("unreachable")


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 50,
    log: bool = False,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one row per (label, point), terminal-friendly.

    The paper's growth figures (9, 11) are log-scale plots; with
    ``log=True`` bar lengths are proportional to ``log10`` of the value
    so linear-vs-quadratic growth is visible in a terminal the way it
    is on the paper's axes.  Zero and negative values render as empty
    bars.

    >>> print(ascii_chart({"a": [1.0, 100.0]}, width=10, log=True))
    a[0]  ▏           1.000
    a[1]  ██████████  100.000
    """
    import math

    rows: List[tuple] = []
    for label, values in series.items():
        for index, value in enumerate(values):
            tag = f"{label}[{index}]" if len(values) > 1 else label
            rows.append((tag, float(value)))
    if not rows:
        return "(no data)"
    positives = [v for _, v in rows if v > 0]
    floor = min(positives) if positives else 1.0
    top = max(positives) if positives else 1.0

    def magnitude(value: float) -> float:
        if value <= 0:
            return 0.0
        if not log:
            return value / top
        if top == floor:
            return 1.0
        return (math.log10(value) - math.log10(floor)) / (
            math.log10(top) - math.log10(floor)
        )

    label_width = max(len(tag) for tag, _ in rows)
    lines = []
    for tag, value in rows:
        filled = magnitude(value) * width
        whole = int(filled)
        bar = "█" * whole
        if whole < width and filled - whole >= 0.5:
            bar += "▌"
        if not bar:
            bar = "▏"
        shown = _cell(value) + (f" {unit}" if unit else "")
        lines.append(f"{tag.ljust(label_width)}  {bar.ljust(width)}  {shown}")
    return "\n".join(lines)
