"""Figure 10 — memory footprint on the mesh topology.

Average resident memory (CRDT state plus synchronization buffers and
metadata) relative to delta-based BP+RR, for GCounter, GSet, GMap 10 %
and GMap 100 %.  The paper's observations:

* state-based keeps no synchronization metadata at all — it is the
  memory optimum;
* classic delta-based and delta-BP retain 1.1×–3.9× more than BP+RR
  because their δ-buffers hold fat redundant δ-groups;
* Scuttlebutt-GC tracks BP+RR closely on GSet/GMap 10 % since seen-by-
  everyone deltas are pruned; original Scuttlebutt never prunes and
  deteriorates for as long as updates keep coming;
* the vector-based protocols collapse on GCounter, where they cannot
  compress increments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.grid import BASELINE, EvaluationGrid, run_grid
from repro.experiments.report import format_table
from repro.sim.topology import partial_mesh

FIGURE10_WORKLOADS = ("gcounter", "gset", "gmap-10", "gmap-100")


@dataclass
class Figure10Result:
    grid: EvaluationGrid

    def memory_ratio(self, workload: str, algorithm: str) -> float:
        return self.grid.cell(workload, "mesh").memory_ratios()[algorithm]

    def rows(self) -> List[Tuple[str, str, str, float, float]]:
        return self.grid.rows("memory")

    def render(self) -> str:
        return format_table(
            ("workload", "topology", "algorithm", "avg units", f"ratio vs {BASELINE}"),
            self.rows(),
            title=(
                f"Figure 10 — average memory, mesh({self.grid.nodes}, 4), "
                f"{self.grid.rounds} events/node"
            ),
        )


def run_figure10(nodes: int = 15, rounds: int = 100) -> Figure10Result:
    """Reproduce the Figure 10 memory sweep (mesh only, as in the paper)."""
    grid = run_grid(
        FIGURE10_WORKLOADS,
        nodes=nodes,
        rounds=rounds,
        topologies={"mesh": partial_mesh(nodes, 4)},
    )
    return Figure10Result(grid)
