"""Live ring rebalancing measured: WAL-segment handoff vs naive transfer.

The paper's argument — ship the join decomposition, not the state —
extends to *membership changes*: when a shard moves to a new owner, the
old owner ships a compacted WAL segment (PR 4's canonical encoded
decomposition) through the ``kv-handoff-*`` exchange instead of pushing
live state objects around.  This driver measures that claim end to end:

1. run client traffic against a ring that leaves one topology node
   spare;
2. ``add_replica`` the spare node mid-run — traffic keeps flowing while
   the handoff protocol ships every moved shard;
3. ``decommission_replica`` the lowest node mid-run — the leaver
   sources its shards, fences its logs, and ends empty;
4. drain to per-shard convergence.

Per phase the report compares the measured handoff payload bytes
against the *naive full-state transfer baseline* — every live old owner
pushing its encoded state object to every gaining owner, which is what
membership changes cost without a handoff protocol (blanket repair
fills the new owner from every co-owner independently).  The consistent
ring keeps the movement itself minimal (``~replication/n`` of shards),
which the report also verifies against the observed moved fraction.

Both transports run the identical schedule: ``transport="sim"`` counts
size-model bytes, ``transport="tcp"`` measured wire bytes of the
:mod:`repro.codec` envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.kv_sweep import (
    KV_ALGORITHMS,
    KVConfig,
    _cell_span,
    _open_tracer,
)
from repro.experiments.report import format_table, human_bytes
from repro.kv.cluster import KVCluster, RebalanceReport
from repro.kv.ring import HashRing
from repro.sim.network import ClusterConfig
from repro.sim.topology import full_mesh

#: Handoff counters snapshotted between phases (scheduler stats keys).
_HANDOFF_KEYS = (
    "handoffs_started",
    "handoffs_completed",
    "handoff_offers",
    "handoff_segments",
    "handoff_payload_bytes",
    "handoff_metadata_bytes",
)


@dataclass(frozen=True)
class RebalancePhase:
    """One membership change, measured."""

    label: str
    moved_shards: int
    moved_fraction: float
    expected_fraction: float
    transfers: int
    unsourced: int
    handoffs_completed: int
    handoff_offers: int
    handoff_segments: int
    handoff_payload_bytes: int
    handoff_metadata_bytes: int
    naive_fullstate_bytes: int

    @property
    def handoff_bytes(self) -> int:
        """Everything the handoff path moved: segments plus framing."""
        return self.handoff_payload_bytes + self.handoff_metadata_bytes

    @property
    def vs_naive(self) -> float:
        """Handoff payload as a fraction of the naive baseline."""
        if not self.naive_fullstate_bytes:
            return float("nan")
        return self.handoff_payload_bytes / self.naive_fullstate_bytes


@dataclass(frozen=True)
class KVRebalanceResult:
    """The whole rebalance replay: add, decommission, convergence."""

    config: KVConfig
    algorithm: str
    workload: str
    total_updates: int
    phases: Tuple[RebalancePhase, ...]
    converged: bool
    drain_rounds: int
    decommissioned_empty: bool

    @property
    def handoff_payload_bytes(self) -> int:
        return sum(phase.handoff_payload_bytes for phase in self.phases)

    @property
    def naive_fullstate_bytes(self) -> int:
        return sum(phase.naive_fullstate_bytes for phase in self.phases)

    def phase(self, label: str) -> RebalancePhase:
        for entry in self.phases:
            if entry.label == label:
                return entry
        raise KeyError(label)

    def render(self) -> str:
        config = self.config
        header = (
            f"kv live rebalancing — {self.algorithm} inner protocol, "
            f"{config.shards} shards × rf {config.replication}, "
            f"{self.total_updates} updates with traffic flowing, "
            f"recovery {config.recovery}, seed {config.seed}"
        )
        if config.transport != "sim":
            header += f", transport {config.transport} (measured wire bytes)"
        rows = []
        for phase in self.phases:
            rows.append(
                (
                    phase.label,
                    phase.moved_shards,
                    f"{phase.moved_fraction:.2f}",
                    f"~{phase.expected_fraction:.2f}",
                    f"{phase.handoffs_completed}/{phase.transfers}",
                    phase.handoff_segments,
                    human_bytes(phase.handoff_payload_bytes),
                    human_bytes(phase.handoff_bytes),
                    human_bytes(phase.naive_fullstate_bytes),
                    f"{phase.vs_naive:.2f}x",
                )
            )
        footer = (
            f"converged={self.converged} after {self.drain_rounds} drain rounds; "
            f"decommissioned node empty={self.decommissioned_empty}"
        )
        table = format_table(
            (
                "phase",
                "moved",
                "frac",
                "expect",
                "handoffs",
                "segments",
                "handoff payload",
                "handoff total",
                "naive full-state",
                "vs naive",
            ),
            rows,
            title=header,
        )
        return f"{table}\n{footer}"


def _handoff_snapshot(cluster: KVCluster) -> Dict[str, int]:
    stats = cluster.scheduler_stats()
    return {key: stats.get(key, 0) for key in _HANDOFF_KEYS}


def _expected_fraction(report: RebalanceReport, replication: int) -> float:
    """The consistent-hash movement bound for one membership change.

    Adding or removing one node reassigns about that node's shard
    share: each shard has ``replication`` owner slots spread over the
    larger membership, so ``~replication/n`` of shards move.
    """
    larger = max(len(report.old_replicas), len(report.new_replicas))
    return replication / larger


def _phase_measurement(
    label: str,
    report: RebalanceReport,
    replication: int,
    before: Dict[str, int],
    after: Dict[str, int],
) -> RebalancePhase:
    taken = {key: after[key] - before[key] for key in _HANDOFF_KEYS}
    return RebalancePhase(
        label=label,
        moved_shards=len(report.moved_shards),
        moved_fraction=report.moved_fraction,
        expected_fraction=_expected_fraction(report, replication),
        transfers=len(report.transfers),
        unsourced=len(report.unsourced),
        handoffs_completed=taken["handoffs_completed"],
        handoff_offers=taken["handoff_offers"],
        handoff_segments=taken["handoff_segments"],
        handoff_payload_bytes=taken["handoff_payload_bytes"],
        handoff_metadata_bytes=taken["handoff_metadata_bytes"],
        naive_fullstate_bytes=report.naive_fullstate_bytes,
    )


def run_kv_rebalance(
    config: KVConfig = KVConfig(
        repair_interval=4, repair_fanout=8, repair_mode="digest", recovery="wal"
    ),
    algorithm: str = "delta-based-bp-rr",
) -> KVRebalanceResult:
    """One deterministic replay: traffic → add → traffic → decommission →
    traffic → drain, with every shard movement shipped by handoff.

    The topology has ``config.replicas`` nodes but the initial ring
    covers only the first ``replicas - 1`` — the spare seat is what
    :meth:`~repro.kv.cluster.KVCluster.add_replica` fills mid-run.
    Requires ``config.repair_interval >= 1`` (the rebalance safety net)
    and at least ``replication + 1`` initial members so the later
    decommission stays above the replication factor.
    """
    if algorithm not in KV_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r} (known: {sorted(KV_ALGORITHMS)})"
        )
    if config.repair_interval < 1:
        raise ValueError(
            "live rebalancing requires the repair path: set "
            "repair_interval >= 1 (0 disables repair entirely)"
        )
    initial = config.replicas - 1
    if initial < config.replication + 1:
        raise ValueError(
            f"need at least replication+2 = {config.replication + 2} topology "
            f"nodes (one spare to add, one to decommission), got {config.replicas}"
        )
    ring = HashRing(
        range(initial), n_shards=config.shards, replication=config.replication
    )
    workload = config.make_workload(ring)
    joiner = config.replicas - 1
    leaver = 0
    tracer = _open_tracer(config)
    cluster = KVCluster(
        ring,
        KV_ALGORITHMS[algorithm],
        config=ClusterConfig(topology=full_mesh(config.replicas)),
        antientropy=config.antientropy(),
        transport=config.transport,
        recovery=config.recovery,
        wal_config=config.wal_config() if config.recovery != "repair" else None,
        trace=tracer,
    )
    end_cell = _cell_span(
        cluster, tracer, f"rebalance {algorithm}", {"workload": workload.name}
    )

    def run_traffic(first: int, last: int) -> None:
        # Smart-client routing against the *current* ring: the schedule
        # was drawn against the initial placement, but mid-run the key's
        # owner group may have moved, so ops route by key, not by node.
        for round_index in range(first, last):
            for node in range(config.replicas):
                for op in workload.updates_for(round_index, node):
                    cluster.update(op.key, op.op, *op.args)
            cluster.run_round(updates=None)

    try:
        phase = max(1, workload.rounds // 3)
        run_traffic(0, phase)
        before_add = _handoff_snapshot(cluster)
        add_report = cluster.add_replica(joiner)
        run_traffic(phase, 2 * phase)
        # Settle the join before the next membership change, so each
        # phase's byte/completion deltas are cleanly attributable — the
        # operational rhythm too: one rebalance settles before the next.
        drain_rounds = cluster.drain()
        after_add = _handoff_snapshot(cluster)
        decom_report = cluster.decommission_replica(leaver)
        run_traffic(2 * phase, workload.rounds)
        drain_rounds += cluster.drain()
        after_decom = _handoff_snapshot(cluster)
        end_cell()
        phases = (
            _phase_measurement(
                f"add {joiner}",
                add_report,
                config.replication,
                before_add,
                after_add,
            ),
            _phase_measurement(
                f"decommission {leaver}",
                decom_report,
                config.replication,
                after_add,
                after_decom,
            ),
        )
        return KVRebalanceResult(
            config=config,
            algorithm=algorithm,
            workload=workload.name,
            total_updates=workload.total_updates(),
            phases=phases,
            converged=cluster.converged(),
            drain_rounds=drain_rounds,
            decommissioned_empty=not cluster.nodes[leaver].shards,
        )
    finally:
        cluster.close()
        if tracer is not None:
            tracer.sink.close()
