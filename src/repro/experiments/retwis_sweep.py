"""The shared Retwis contention sweep behind Figures 11 and 12.

Both figures are computed from the same runs — classic delta-based and
delta-based BP+RR replaying identical Retwis schedules at Zipf
coefficients from 0.5 to 1.5 — so the sweep is executed once and cached
per parameterization.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Sequence, Tuple

from repro.sim.metrics import MetricsCollector
from repro.sim.runner import ExperimentResult, run_suite
from repro.sim.topology import partial_mesh
from repro.sync import keyed_bp_rr, keyed_classic
from repro.workloads import RetwisWorkload

#: The Zipf coefficients of Section V-C.
PAPER_COEFFICIENTS = (0.5, 0.75, 1.0, 1.25, 1.5)

RETWIS_ALGORITHMS = {"delta-based": keyed_classic, "delta-based-bp-rr": keyed_bp_rr}


@dataclass(frozen=True)
class RetwisConfig:
    """Scale parameters for the Retwis deployment.

    The paper runs 50 nodes / 10 000 users; the defaults here are scaled
    for interactive runs while preserving the contention shape.  Use
    :meth:`paper_scale` for the full-size configuration.
    """

    nodes: int = 20
    degree: int = 4
    users: int = 500
    rounds: int = 30
    ops_per_node: int = 8
    seed: int = 42

    @staticmethod
    def paper_scale() -> "RetwisConfig":
        return RetwisConfig(nodes=50, degree=4, users=10_000, rounds=60, ops_per_node=10)


@dataclass
class HalfView:
    """Per-half measurements for one algorithm run (Figure 11 splits)."""

    bytes_per_node_per_sec: float
    memory_bytes_per_node: float


@dataclass
class RetwisRun:
    """One algorithm × coefficient outcome with half-split views."""

    result: ExperimentResult

    def halves(self) -> Tuple[HalfView, HalfView]:
        duration = self.result.duration_ms
        first, second = self.result.metrics.split_at(duration / 2)
        return (
            self._view(first, duration / 2),
            self._view(second, duration / 2),
        )

    def _view(self, metrics: MetricsCollector, span_ms: float) -> HalfView:
        seconds = max(span_ms / 1000.0, 1e-9)
        per_node = metrics.total_bytes() / metrics.n_nodes
        memory_samples = metrics.memory
        memory = (
            sum(s.total_bytes for s in memory_samples) / len(memory_samples)
            if memory_samples
            else 0.0
        )
        return HalfView(
            bytes_per_node_per_sec=per_node / seconds,
            memory_bytes_per_node=memory,
        )

    def bandwidth_per_node_per_sec(self) -> float:
        seconds = max(self.result.duration_ms / 1000.0, 1e-9)
        return self.result.metrics.bytes_per_node() / seconds

    def memory_bytes_per_node(self) -> float:
        return self.result.metrics.average_memory_bytes()


SweepKey = Tuple[float, str]


def run_retwis_sweep(
    coefficients: Sequence[float] = PAPER_COEFFICIENTS,
    config: RetwisConfig = RetwisConfig(),
) -> Dict[SweepKey, RetwisRun]:
    """Run the sweep; results keyed by (coefficient, algorithm)."""
    return _cached_sweep(tuple(coefficients), config)


@lru_cache(maxsize=4)
def _cached_sweep(
    coefficients: Tuple[float, ...], config: RetwisConfig
) -> Dict[SweepKey, RetwisRun]:
    out: Dict[SweepKey, RetwisRun] = {}
    topology = partial_mesh(config.nodes, config.degree)
    for coefficient in coefficients:
        results = run_suite(
            RETWIS_ALGORITHMS,
            lambda c=coefficient: RetwisWorkload(
                config.nodes,
                users=config.users,
                rounds=config.rounds,
                ops_per_node=config.ops_per_node,
                zipf_coefficient=c,
                seed=config.seed,
            ),
            topology,
        )
        for label, result in results.items():
            out[(coefficient, label)] = RetwisRun(result)
    return out
