"""Merkle-trie anti-entropy — the hash-based related-work baseline.

Section VI of the paper surveys reconciliation mechanisms that detect
divergence by exchanging hashes — Demers et al.'s epidemic algorithms
and the Bloom-filter/Merkle-tree/Patricia-trie schemes of Byers et al.
— and observes that they "require a significant number of message
exchanges to identify the source of divergence" and "might incur
significant processing overhead due to the need of computing hash
functions".  This module implements such a baseline so the claim can be
measured against delta-based synchronization on equal footing.

The state is summarized as a *hash-prefix trie* over the irredundant
join decomposition: each join-irreducible is serialized with
:mod:`repro.codec` and hashed; leaves live in buckets keyed by hash
prefix nibbles, and every trie node's digest combines its children.
Prefix addressing is what makes two replicas' tries comparable without
any shared history.

Per synchronization tick each node starts a push-pull descent with
every neighbour:

1. the initiator sends its root digest;
2. on mismatch the responder answers with child digests, and the
   descent recurses one level per round trip;
3. once a divergent subtree is small (or at maximal depth), the
   responder ships its irreducibles in that bucket and the initiator
   replies with the complement it holds.

Correct and delta-free — but every tick pays hash recomputation over
the whole state, and divergence localization costs ``O(depth)`` round
trips, which is exactly the overhead profile the paper attributes to
this family.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.codec import decode, encode
from repro.lattice.base import Lattice
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.sync.protocol import DeltaMutator, Message, Send, Synchronizer

#: Children per trie node: one hex nibble of the leaf hash.
_FANOUT = 16
#: Ship a bucket outright once its subtree holds at most this many leaves.
_BUCKET_THRESHOLD = 8
#: Hard depth cap (16^6 prefixes is beyond any bucket in these workloads).
_MAX_DEPTH = 6
#: Digest size in bytes (sha1), counted as metadata on the wire.
_DIGEST_BYTES = 20


def _leaf_hash(payload: bytes) -> bytes:
    return hashlib.sha1(payload).digest()


class _Trie:
    """An immutable hash-prefix trie over encoded irreducibles.

    Built fresh from a lattice state at every synchronization tick —
    deliberately so: recomputation cost is part of what this baseline
    is measuring.
    """

    __slots__ = ("leaves",)

    def __init__(self, state: Lattice) -> None:
        #: leaf hash → encoded irreducible, for the whole state.
        self.leaves: Dict[bytes, bytes] = {}
        for irreducible in state.decompose():
            payload = encode(irreducible)
            self.leaves[_leaf_hash(payload)] = payload

    def bucket(self, prefix: str) -> List[Tuple[bytes, bytes]]:
        """The (hash, payload) leaves whose hex digest starts with prefix."""
        return [
            (digest, payload)
            for digest, payload in self.leaves.items()
            if digest.hex().startswith(prefix)
        ]

    def node_digest(self, prefix: str) -> bytes:
        """Digest of the subtree under ``prefix`` (empty → root)."""
        hasher = hashlib.sha1()
        for digest in sorted(d for d in self.leaves if d.hex().startswith(prefix)):
            hasher.update(digest)
        return hasher.digest()

    def children(self, prefix: str) -> List[Tuple[str, bytes]]:
        """Non-empty child prefixes of ``prefix`` with their digests."""
        out = []
        for nibble in "0123456789abcdef":
            child = prefix + nibble
            if any(d.hex().startswith(child) for d in self.leaves):
                out.append((child, self.node_digest(child)))
        return out

    def subtree_size(self, prefix: str) -> int:
        return sum(1 for d in self.leaves if d.hex().startswith(prefix))


class MerkleSync(Synchronizer):
    """Anti-entropy over hash-prefix tries of join decompositions.

    Every message carries only digests (metadata) until a divergent
    bucket is found, at which point the bucket's irreducibles travel as
    payload in both directions.  States converge because each exchanged
    bucket join is a lattice join of the union of both sides' leaves.
    """

    name = "merkle"

    def __init__(
        self,
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
    ) -> None:
        super().__init__(replica, neighbors, bottom, n_nodes, size_model)
        #: Hash invocations performed; the related-work CPU proxy.
        self.hash_operations = 0

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------

    def local_update(self, delta_mutator: DeltaMutator) -> Lattice:
        delta = delta_mutator(self.state)
        self.state = self.state.join(delta)
        return delta

    def sync_messages(self) -> List[Send]:
        trie = self._build_trie()
        root = trie.node_digest("")
        message = Message(
            kind="mt-node",
            payload=(("", root),),
            payload_units=0,
            payload_bytes=0,
            metadata_bytes=_DIGEST_BYTES,
            metadata_units=1,
        )
        return [Send(dst=neighbor, message=message) for neighbor in self.neighbors]

    def handle_message(self, src: int, message: Message) -> List[Send]:
        if message.kind == "mt-node":
            return self._handle_digests(src, message.payload)
        if message.kind == "mt-leaves":
            return self._handle_leaves(src, message.payload, reply=True)
        if message.kind == "mt-leaves-final":
            return self._handle_leaves(src, message.payload, reply=False)
        raise ValueError(f"unexpected message kind {message.kind!r}")

    # ------------------------------------------------------------------
    # Descent.
    # ------------------------------------------------------------------

    def _handle_digests(
        self, src: int, nodes: Iterable[Tuple[str, bytes]]
    ) -> List[Send]:
        trie = self._build_trie()
        descend: List[Tuple[str, bytes]] = []
        ship: List[Tuple[str, List[Tuple[bytes, bytes]]]] = []
        for prefix, remote_digest in nodes:
            if trie.node_digest(prefix) == remote_digest:
                continue
            small = trie.subtree_size(prefix) <= _BUCKET_THRESHOLD
            if small or len(prefix) >= _MAX_DEPTH:
                ship.append((prefix, trie.bucket(prefix)))
            else:
                descend.extend(trie.children(prefix))
        sends: List[Send] = []
        if descend:
            sends.append(
                Send(
                    dst=src,
                    message=Message(
                        kind="mt-node",
                        payload=tuple(descend),
                        payload_units=0,
                        payload_bytes=0,
                        metadata_bytes=len(descend) * (_DIGEST_BYTES + 4),
                        metadata_units=len(descend),
                    ),
                )
            )
        if ship:
            sends.append(self._leaves_message(src, ship, kind="mt-leaves"))
        return sends

    def _handle_leaves(
        self,
        src: int,
        buckets: Iterable[Tuple[str, Tuple[Tuple[bytes, bytes], ...]]],
        reply: bool,
    ) -> List[Send]:
        trie = self._build_trie()
        complement: List[Tuple[str, List[Tuple[bytes, bytes]]]] = []
        for prefix, remote_leaves in buckets:
            remote_hashes = set()
            for digest, payload in remote_leaves:
                remote_hashes.add(digest)
                if digest not in trie.leaves:
                    self.state = self.state.join(decode(payload))
            if reply:
                missing_there = [
                    (digest, payload)
                    for digest, payload in trie.bucket(prefix)
                    if digest not in remote_hashes
                ]
                if missing_there:
                    complement.append((prefix, missing_there))
        if complement:
            return [self._leaves_message(src, complement, kind="mt-leaves-final")]
        return []

    def _leaves_message(
        self,
        dst: int,
        buckets: List[Tuple[str, List[Tuple[bytes, bytes]]]],
        kind: str,
    ) -> Send:
        units = 0
        payload_bytes = 0
        for _, leaves in buckets:
            for digest, payload in leaves:
                units += decode(payload).size_units()
                payload_bytes += len(payload)
        hashes = sum(len(leaves) for _, leaves in buckets)
        return Send(
            dst=dst,
            message=Message(
                kind=kind,
                payload=tuple((prefix, tuple(leaves)) for prefix, leaves in buckets),
                payload_units=units,
                payload_bytes=payload_bytes,
                metadata_bytes=hashes * _DIGEST_BYTES,
                metadata_units=hashes,
            ),
        )

    def _build_trie(self) -> _Trie:
        trie = _Trie(self.state)
        # One hash per leaf plus one per digest query is the true cost;
        # leaf count is the dominant, machine-independent term.
        self.hash_operations += len(trie.leaves) + 1
        return trie

    # ------------------------------------------------------------------
    # Memory accounting: tries are transient, nothing is buffered.
    # ------------------------------------------------------------------

    def buffer_units(self) -> int:
        return 0

    def buffer_bytes(self) -> int:
        return 0

    def metadata_bytes(self) -> int:
        return 0

    def metadata_units(self) -> int:
        return 0
