"""Scuttlebutt anti-entropy reconciliation over a versioned delta store.

Scuttlebutt (van Renesse et al., LADIS 2008) reconciles key-value
stores: every locally-known update is identified by a version
``⟨origin, seq⟩`` and each node summarizes its knowledge in a vector
``I ↪→ ℕ``.  A node periodically sends its vector to a neighbour, which
replies with every key-value pair the vector does not cover.

Following Section V-B of the paper, the values stored and exchanged are
the **optimal deltas produced by δ-mutators** (storing full CRDT states
would degenerate into state-based sync), and the keys are the version
pairs themselves.  Received deltas are joined into the local CRDT state
and stored for further propagation.

Two variants are implemented:

* :class:`Scuttlebutt` — the original protocol, which can never delete
  a stored delta (a neighbour may always ask for it), so its memory
  footprint grows without bound while updates keep arriving;
* :class:`ScuttlebuttGC` — the paper's extension for safe deletes: each
  node additionally gossips a knowledge map ``I ↪→ (I ↪→ ℕ)`` recording
  the last summary vector it attributes to every node; once a delta's
  version is covered by *every* node's vector, it can never be
  requested again and is pruned.

The metadata costs measured in Figure 9 fall out directly: a vector per
neighbour per round (``NP``) for Scuttlebutt, plus the knowledge matrix
(``N²P``) for Scuttlebutt-GC, plus a version key per shipped delta.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.lattice.base import Lattice
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.sync.protocol import DeltaMutator, Message, Send, Synchronizer

#: A delta's identity: (origin replica, per-origin sequence number).
Version = Tuple[int, int]


class Scuttlebutt(Synchronizer):
    """Push-pull anti-entropy over ⟨origin, seq⟩-versioned deltas."""

    name = "scuttlebutt"

    def __init__(
        self,
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
    ) -> None:
        super().__init__(replica, neighbors, bottom, n_nodes, size_model)
        #: The delta key-value store: version → delta.
        self.store: Dict[Version, Lattice] = {}
        #: Knowledge summary: origin → highest (gap-free) seq known.
        self.vector: Dict[int, int] = {}
        # Incrementally maintained store sizes so per-round memory
        # sampling stays O(1) even as the store grows without bound.
        self._store_units = 0
        self._store_bytes = 0

    # ------------------------------------------------------------------
    # Local updates: version and store the optimal delta.
    # ------------------------------------------------------------------

    def local_update(self, delta_mutator: DeltaMutator) -> Lattice:
        delta = delta_mutator(self.state)
        if delta.is_bottom:
            return delta
        seq = self.vector.get(self.replica, 0) + 1
        self.vector[self.replica] = seq
        self._store_put((self.replica, seq), delta)
        self.state = self.state.join(delta)
        return delta

    # ------------------------------------------------------------------
    # Periodic step: push the summary vector to every neighbour.
    # ------------------------------------------------------------------

    def sync_messages(self) -> List[Send]:
        message = Message(
            kind="digest",
            payload=dict(self.vector),
            payload_units=0,
            payload_bytes=0,
            metadata_bytes=self._vector_bytes(self.vector),
            metadata_units=len(self.vector),
        )
        return [Send(dst=neighbor, message=message) for neighbor in self.neighbors]

    # ------------------------------------------------------------------
    # Message handling.
    # ------------------------------------------------------------------

    def handle_message(self, src: int, message: Message) -> List[Send]:
        if message.kind == "digest":
            return self._answer_digest(src, message.payload)
        if message.kind == "deltas":
            self._absorb_deltas(message.payload)
            return []
        raise ValueError(f"unexpected message kind {message.kind!r}")

    def _answer_digest(self, src: int, remote_vector: Dict[int, int]) -> List[Send]:
        """Reply with every stored delta the remote vector misses."""
        missing = [
            (version, delta)
            for version, delta in self.store.items()
            if version[1] > remote_vector.get(version[0], 0)
        ]
        self._note_remote_vector(src, remote_vector)
        if not missing:
            return []
        units = sum(delta.size_units() for _, delta in missing)
        payload_bytes = sum(delta.size_bytes(self.size_model) for _, delta in missing)
        version_keys = len(missing) * (self.size_model.id_bytes + self.size_model.int_bytes)
        message = Message(
            kind="deltas",
            payload=missing,
            payload_units=units,
            payload_bytes=payload_bytes,
            metadata_bytes=version_keys,
            metadata_units=len(missing),
        )
        return [Send(dst=src, message=message)]

    def _absorb_deltas(self, pairs: List[Tuple[Version, Lattice]]) -> None:
        """Store and join versioned deltas not seen before."""
        for (origin, seq), delta in sorted(pairs, key=lambda pair: pair[0]):
            if seq <= self.vector.get(origin, 0):
                continue
            self._store_put((origin, seq), delta)
            self.vector[origin] = max(self.vector.get(origin, 0), seq)
            self.state = self.state.join(delta)

    def _note_remote_vector(self, src: int, remote_vector: Dict[int, int]) -> None:
        """Hook for the GC variant; the original protocol learns nothing."""

    def absorb_state(self, state: Lattice, src: Optional[int] = None) -> Lattice:
        """Repair absorption: the novelty enters the store *versioned*.

        Repaired content arrives as raw lattice state, outside the
        ⟨origin, seq⟩ identification every stored delta normally
        carries.  Joining it straight into ``self.state`` would make the
        summary vector lie: the replica would hold content its vector
        does not cover, so its digest answers would silently omit it and
        a fresh peer syncing against this replica could never learn it.
        Instead the inflating delta is recorded under a fresh local
        version — exactly as if the replica had (re-)performed the
        update itself — which keeps ``state == ⊔ store`` so digest
        answers can serve everything the replica holds.

        One caveat on a replica rebuilt after state loss: until normal
        gossip restores its own pre-crash sequence range, freshly
        minted versions may be *shadowed* by peers' higher attributed
        seqs and not requested through Scuttlebutt digests.  That is
        harmless for convergence — repaired content always originates
        at some co-owner, so every other pair reconciles it through
        its own exchange (or the store-level repair layer) — and
        deliberately not "fixed" by jumping the sequence counter, which
        would stop peers from re-shipping the pre-crash deltas the
        reset replica's empty vector asks for.
        """
        extracted = state.delta(self.state)
        if extracted.is_bottom:
            return extracted
        seq = self.vector.get(self.replica, 0) + 1
        self.vector[self.replica] = seq
        self._store_put((self.replica, seq), extracted)
        self.state = self.state.join(extracted)
        return extracted

    # ------------------------------------------------------------------
    # Memory accounting.
    # ------------------------------------------------------------------

    def buffer_units(self) -> int:
        return self._store_units

    def buffer_bytes(self) -> int:
        return self._store_bytes

    def _store_put(self, version: Version, delta: Lattice) -> None:
        """Insert a delta, keeping the incremental size counters exact."""
        previous = self.store.get(version)
        if previous is not None:  # pragma: no cover - versions are unique
            self._store_units -= previous.size_units()
            self._store_bytes -= previous.size_bytes(self.size_model)
        self.store[version] = delta
        self._store_units += delta.size_units()
        self._store_bytes += delta.size_bytes(self.size_model)

    def _store_del(self, version: Version) -> None:
        """Remove a delta, keeping the incremental size counters exact."""
        delta = self.store.pop(version)
        self._store_units -= delta.size_units()
        self._store_bytes -= delta.size_bytes(self.size_model)

    def metadata_bytes(self) -> int:
        """Version keys on stored deltas plus the summary vector."""
        version_keys = len(self.store) * (self.size_model.id_bytes + self.size_model.int_bytes)
        return version_keys + self._vector_bytes(self.vector)

    def metadata_units(self) -> int:
        """One entry per stored version key plus the summary vector."""
        return len(self.store) + len(self.vector)

    def _vector_bytes(self, vector: Dict[int, int]) -> int:
        return self.size_model.vector_bytes(len(vector))


class ScuttlebuttGC(Scuttlebutt):
    """Scuttlebutt with safe deletes via a gossiped knowledge matrix.

    Every digest additionally carries the sender's knowledge map
    ``I ↪→ (I ↪→ ℕ)``.  A stored delta ⟨o, s⟩ is pruned once every
    replica's attributed vector covers ``s`` — after that, no summary
    vector anyone can ever send would request it again.
    """

    name = "scuttlebutt-gc"

    def __init__(
        self,
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
    ) -> None:
        super().__init__(replica, neighbors, bottom, n_nodes, size_model)
        #: What we believe each node has seen: node → summary vector.
        self.knowledge: Dict[int, Dict[int, int]] = {node: {} for node in range(n_nodes)}

    def sync_messages(self) -> List[Send]:
        self.knowledge[self.replica] = dict(self.vector)
        matrix = {node: dict(vector) for node, vector in self.knowledge.items()}
        matrix_entries = sum(len(vector) for vector in matrix.values())
        message = Message(
            kind="digest",
            payload={"vector": dict(self.vector), "knowledge": matrix},
            payload_units=0,
            payload_bytes=0,
            metadata_bytes=self._vector_bytes(self.vector)
            + self.size_model.vector_bytes(matrix_entries),
            metadata_units=len(self.vector) + matrix_entries,
        )
        return [Send(dst=neighbor, message=message) for neighbor in self.neighbors]

    def handle_message(self, src: int, message: Message) -> List[Send]:
        if message.kind == "digest":
            payload = message.payload
            replies = self._answer_digest(src, payload["vector"])
            self._merge_knowledge(payload["knowledge"])
            self._prune()
            return replies
        return super().handle_message(src, message)

    def _note_remote_vector(self, src: int, remote_vector: Dict[int, int]) -> None:
        mine = self.knowledge.setdefault(src, {})
        for origin, seq in remote_vector.items():
            mine[origin] = max(mine.get(origin, 0), seq)

    def _merge_knowledge(self, remote_knowledge: Dict[int, Dict[int, int]]) -> None:
        for node, vector in remote_knowledge.items():
            mine = self.knowledge.setdefault(node, {})
            for origin, seq in vector.items():
                mine[origin] = max(mine.get(origin, 0), seq)

    def _prune(self) -> None:
        """Drop deltas whose version every replica is known to cover."""
        self.knowledge[self.replica] = dict(self.vector)
        deletable = []
        for origin, seq in self.store:
            covered = all(
                self.knowledge.get(node, {}).get(origin, 0) >= seq
                for node in range(self.n_nodes)
            )
            if covered:
                deletable.append((origin, seq))
        for version in deletable:
            self._store_del(version)

    def metadata_bytes(self) -> int:
        matrix_entries = sum(len(vector) for vector in self.knowledge.values())
        return super().metadata_bytes() + self.size_model.vector_bytes(matrix_entries)

    def metadata_units(self) -> int:
        matrix_entries = sum(len(vector) for vector in self.knowledge.values())
        return super().metadata_units() + matrix_entries
