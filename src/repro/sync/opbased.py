"""Operation-based synchronization over a causal-broadcast middleware.

Operation-based CRDTs disseminate *operations* instead of states,
relying on a middleware that delivers every operation exactly once, in
causal order (Section V-B).  Each operation is tagged with its origin,
a per-origin sequence number, and a vector clock summarizing its causal
past; a replica delivers an operation only after delivering everything
the clock says precedes it.

Topologies without all-to-all connectivity need relaying.  The paper
describes — and this module implements — a store-and-forward
middleware: the first time an operation is seen it enters a
transmission buffer for further propagation; duplicates received from
other neighbours only update the record of who has seen the operation,
so unnecessary retransmissions are avoided.  An operation leaves the
buffer once every neighbour is known to have it.  The paper calls this
"the best possible implementation of such a middleware".

The operation payload shipped here is the *origin-side optimal delta*
of the update, applied at receivers by lattice join.  This preserves
the two properties the paper's comparison hinges on: payload sizes
match one-operation-per-update dissemination (one unit per increment —
the middleware cannot compress ten increments into one, unlike a lattice
join of deltas), and the metadata is a full vector clock per operation
(``NPU`` per node per round, Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.lattice.base import Lattice
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.sync.protocol import DeltaMutator, Message, Send, Synchronizer

#: Operation identity: (origin replica, per-origin sequence number).
OpId = Tuple[int, int]


@dataclass
class OpEnvelope:
    """An operation in flight: payload plus causal metadata.

    Attributes:
        origin: Replica that generated the operation.
        seq: Per-origin sequence number (1-based).
        clock: Vector clock of the operation's causal past, *including*
            the operation itself at ``clock[origin] == seq``.
        payload: The origin-side delta applied at receivers by join.
    """

    origin: int
    seq: int
    clock: Dict[int, int]
    payload: Lattice

    @property
    def op_id(self) -> OpId:
        return (self.origin, self.seq)


@dataclass
class _BufferedOp:
    """A buffered envelope plus the set of nodes known to have it."""

    envelope: OpEnvelope
    seen_by: Set[int] = field(default_factory=set)


class OpBased(Synchronizer):
    """Causal broadcast with store-and-forward and duplicate suppression."""

    name = "op-based"

    def __init__(
        self,
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
    ) -> None:
        super().__init__(replica, neighbors, bottom, n_nodes, size_model)
        #: Per-origin count of causally delivered operations.
        self.delivered: Dict[int, int] = {}
        #: Transmission buffer: op id → buffered envelope.
        self.buffer: Dict[OpId, _BufferedOp] = {}
        #: Operations received but not yet causally deliverable.
        self.pending: List[Tuple[int, OpEnvelope]] = []
        # Incrementally maintained buffer sizes: memory sampling every
        # round must not rescan a buffer that scales with NPU.
        self._buffer_units = 0
        self._buffer_bytes = 0
        self._buffer_meta_bytes = 0
        self._buffer_meta_units = 0

    # ------------------------------------------------------------------
    # Local updates become self-delivered operations.
    # ------------------------------------------------------------------

    def local_update(self, delta_mutator: DeltaMutator) -> Lattice:
        delta = delta_mutator(self.state)
        if delta.is_bottom:
            return delta
        seq = self.delivered.get(self.replica, 0) + 1
        self.delivered[self.replica] = seq
        clock = dict(self.delivered)
        envelope = OpEnvelope(origin=self.replica, seq=seq, clock=clock, payload=delta)
        self.state = self.state.join(delta)
        self._buffer_put(envelope, seen_by={self.replica})
        return delta

    # ------------------------------------------------------------------
    # Periodic step: forward buffered ops to neighbours lacking them.
    # ------------------------------------------------------------------

    def sync_messages(self) -> List[Send]:
        sends: List[Send] = []
        for neighbor in self.neighbors:
            outgoing = [
                buffered.envelope
                for buffered in self.buffer.values()
                if neighbor not in buffered.seen_by
            ]
            if not outgoing:
                continue
            units = sum(env.payload.size_units() for env in outgoing)
            payload_bytes = sum(env.payload.size_bytes(self.size_model) for env in outgoing)
            metadata = sum(self._envelope_metadata_bytes(env) for env in outgoing)
            metadata_units = sum(1 + len(env.clock) for env in outgoing)
            sends.append(
                Send(
                    dst=neighbor,
                    message=Message(
                        kind="ops",
                        payload=list(outgoing),
                        payload_units=units,
                        payload_bytes=payload_bytes,
                        metadata_bytes=metadata,
                        metadata_units=metadata_units,
                    ),
                )
            )
            # Channels are reliable (paper assumption): once pushed, the
            # neighbour will have it — record that to avoid re-sending.
            for buffered in self.buffer.values():
                if neighbor not in buffered.seen_by:
                    buffered.seen_by.add(neighbor)
        self._prune_buffer()
        return sends

    # ------------------------------------------------------------------
    # Receiving: deduplicate, causally deliver, store-and-forward.
    # ------------------------------------------------------------------

    def handle_message(self, src: int, message: Message) -> List[Send]:
        if message.kind != "ops":
            raise ValueError(f"unexpected message kind {message.kind!r}")
        for envelope in message.payload:
            already = self.buffer.get(envelope.op_id)
            if already is not None:
                # Duplicate from another path: remember src has it.
                already.seen_by.add(src)
                continue
            if envelope.seq <= self.delivered.get(envelope.origin, 0):
                continue  # delivered and already pruned from the buffer
            self.pending.append((src, envelope))
        self._deliver_ready()
        self._prune_buffer()
        return []

    def _deliver_ready(self) -> None:
        """Deliver pending operations respecting causal order."""
        progress = True
        while progress:
            progress = False
            still_pending: List[Tuple[int, OpEnvelope]] = []
            for src, envelope in self.pending:
                if envelope.seq <= self.delivered.get(envelope.origin, 0):
                    continue  # duplicate surfaced while waiting
                if self._causally_ready(envelope):
                    self._deliver(src, envelope)
                    progress = True
                else:
                    still_pending.append((src, envelope))
            self.pending = still_pending

    def _causally_ready(self, envelope: OpEnvelope) -> bool:
        """Standard causal-delivery condition on vector clocks."""
        for node, count in envelope.clock.items():
            if node == envelope.origin:
                if self.delivered.get(node, 0) != count - 1:
                    return False
            elif self.delivered.get(node, 0) < count:
                return False
        return True

    def _deliver(self, src: int, envelope: OpEnvelope) -> None:
        self.state = self.state.join(envelope.payload)
        self.delivered[envelope.origin] = envelope.seq
        self._buffer_put(envelope, seen_by={self.replica, src, envelope.origin})

    def _prune_buffer(self) -> None:
        """Drop operations every neighbour already has."""
        neighbor_set = set(self.neighbors)
        done = [
            op_id
            for op_id, buffered in self.buffer.items()
            if neighbor_set <= buffered.seen_by
        ]
        for op_id in done:
            self._buffer_del(op_id)

    # ------------------------------------------------------------------
    # Memory accounting.
    # ------------------------------------------------------------------

    def buffer_units(self) -> int:
        waiting = sum(env.payload.size_units() for _, env in self.pending)
        return self._buffer_units + waiting

    def buffer_bytes(self) -> int:
        waiting = sum(env.payload.size_bytes(self.size_model) for _, env in self.pending)
        return self._buffer_bytes + waiting

    def metadata_bytes(self) -> int:
        """Vector clocks on buffered/pending ops plus the delivered vector."""
        waiting = sum(self._envelope_metadata_bytes(env) for _, env in self.pending)
        delivered_vector = self.size_model.vector_bytes(len(self.delivered))
        return self._buffer_meta_bytes + waiting + delivered_vector

    def metadata_units(self) -> int:
        """Clock/id entries on buffered and pending ops plus the
        delivered vector."""
        waiting = sum(1 + len(env.clock) for _, env in self.pending)
        return self._buffer_meta_units + waiting + len(self.delivered)

    def _buffer_put(self, envelope: OpEnvelope, seen_by: Set[int]) -> None:
        """Insert an op, keeping the incremental size counters exact."""
        assert envelope.op_id not in self.buffer, "op ids are unique"
        self.buffer[envelope.op_id] = _BufferedOp(envelope, seen_by=seen_by)
        self._buffer_units += envelope.payload.size_units()
        self._buffer_bytes += envelope.payload.size_bytes(self.size_model)
        self._buffer_meta_bytes += self._envelope_metadata_bytes(envelope)
        self._buffer_meta_units += 1 + len(envelope.clock)

    def _buffer_del(self, op_id: OpId) -> None:
        """Remove an op, keeping the incremental size counters exact."""
        buffered = self.buffer.pop(op_id)
        envelope = buffered.envelope
        self._buffer_units -= envelope.payload.size_units()
        self._buffer_bytes -= envelope.payload.size_bytes(self.size_model)
        self._buffer_meta_bytes -= self._envelope_metadata_bytes(envelope)
        self._buffer_meta_units -= 1 + len(envelope.clock)

    def _envelope_metadata_bytes(self, envelope: OpEnvelope) -> int:
        op_id = self.size_model.id_bytes + self.size_model.int_bytes
        clock = self.size_model.vector_bytes(len(envelope.clock))
        return op_id + clock
