"""The synchronizer interface shared by every protocol.

A :class:`Synchronizer` is one replica's view of a synchronization
protocol.  It is transport-neutral: a hosting runtime — the
deterministic simulator, real asyncio TCP sockets, anything
implementing :class:`repro.net.transport.Transport` — drives it
through three entry points:

* :meth:`~Synchronizer.local_update` — the application performed an
  update operation on the replicated object;
* :meth:`~Synchronizer.sync_messages` — the periodic synchronization
  timer fired; return the messages to push to neighbours;
* :meth:`~Synchronizer.handle_message` — a message arrived; return any
  immediate replies (pull-based protocols answer digests here).

Updates arrive as *δ-mutator closures*: callables from the current
lattice state to the optimal delta of the mutation (Section III-B).
Every protocol consumes the same closure —

* state-based joins the delta and ships full states,
* delta-based joins it and also buffers it,
* Scuttlebutt stores it under a fresh version,
* op-based wraps it in a causally-tagged envelope —

so a single workload definition drives all protocols identically, which
is what makes the paper's cross-algorithm comparisons meaningful.

Messages carry explicit size accounting (payload units, payload bytes,
metadata bytes) because the evaluation measures exactly those three
quantities (Sections V-B.1, V-B.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, List, Optional, Sequence

from repro.lattice.base import Lattice
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL

#: A δ-mutator closure: current state → optimal delta to join in.
DeltaMutator = Callable[[Lattice], Lattice]


@dataclass(frozen=True)
class Message:
    """A protocol message with explicit size accounting.

    Attributes:
        kind: Protocol-specific discriminator (``"state"``, ``"delta"``,
            ``"digest"``, ``"deltas"``, ``"ops"``).
        payload: Protocol-specific content.
        payload_units: Payload size in the paper's unit metric (set
            elements / map entries); metadata does not count.
        payload_bytes: Payload size in bytes under the size model.
        metadata_bytes: Synchronization metadata in bytes — version
            vectors, version keys, sequence numbers, knowledge matrices.
        metadata_units: The same metadata in the paper's entry metric
            (one unit per vector/matrix entry or version key).  The
            Figure 7/8 transmission plots count these entries alongside
            the payload, which is how Scuttlebutt and op-based lose to
            state-based on the GCounter despite precise payloads.
    """

    kind: str
    payload: Any
    payload_units: int
    payload_bytes: int
    metadata_bytes: int
    metadata_units: int = 0

    @property
    def total_bytes(self) -> int:
        """Payload plus metadata — what actually crosses the wire."""
        return self.payload_bytes + self.metadata_bytes

    @property
    def total_units(self) -> int:
        """Payload plus metadata in the entry metric."""
        return self.payload_units + self.metadata_units


@dataclass(frozen=True)
class Send:
    """An outbound message addressed to a neighbour."""

    dst: int
    message: Message


class Synchronizer(ABC):
    """One replica's instance of a synchronization protocol.

    Subclasses set :attr:`name` to the label used in the paper's plots
    and implement the three event handlers plus memory accounting.

    Args:
        replica: This replica's index in ``0..n_nodes-1``.
        neighbors: Indices of the replicas this node may talk to.
        bottom: The bottom element of the replicated lattice; the
            initial state of every replica.
        n_nodes: Total number of replicas (vector-based protocols size
            their metadata with it).
        size_model: Byte-size model for payload/metadata accounting.
    """

    name: ClassVar[str] = "abstract"

    def __init__(
        self,
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
    ) -> None:
        self.replica = replica
        self.neighbors = tuple(neighbors)
        self.state = bottom
        self.bottom = bottom
        self.n_nodes = n_nodes
        self.size_model = size_model

    # ------------------------------------------------------------------
    # Event handlers driven by the hosting runtime (any transport).
    # ------------------------------------------------------------------

    @abstractmethod
    def local_update(self, delta_mutator: DeltaMutator) -> Lattice:
        """Apply an update operation locally; return the delta produced."""

    @abstractmethod
    def sync_messages(self) -> List[Send]:
        """The periodic synchronization step (one timer tick)."""

    @abstractmethod
    def handle_message(self, src: int, message: Message) -> List[Send]:
        """Process an incoming message; return immediate replies."""

    def absorb_state(self, state: Lattice, src: Optional[int] = None) -> Lattice:
        """Absorb a peer's (full or partial) state outside normal sync.

        Store-level anti-entropy repair delivers lattice states that did
        not travel through this protocol's own message kinds — a full
        shard state pushed after a crash, or the inflating decomposition
        computed from a digest exchange.  Assigning ``self.state``
        directly would bypass the protocol's bookkeeping (δ-buffers,
        version vectors), so repair must flow through this hook instead.

        Args:
            state: The lattice content to absorb (joined in).
            src: The replica the content arrived from, when known.

        Returns:
            The delta that strictly inflated the local state (bottom
            when nothing was new).

        The default — extract the novelty ``∆(state, xᵢ)`` and join it —
        is exact for protocols whose only synchronization state *is* the
        lattice (state-based, Merkle); protocols with buffers or version
        vectors override it to keep their bookkeeping truthful.
        """
        delta = state.delta(self.state)
        if not delta.is_bottom:
            self.state = self.state.join(delta)
        return delta

    # ------------------------------------------------------------------
    # Memory accounting (Section V-B.3).
    # ------------------------------------------------------------------

    def state_units(self) -> int:
        """CRDT state size in the unit metric."""
        return self.state.size_units()

    def state_bytes(self) -> int:
        """CRDT state size in bytes."""
        return self.state.size_bytes(self.size_model)

    @abstractmethod
    def buffer_units(self) -> int:
        """Synchronization payload retained in memory, in units.

        The δ-buffer for delta-based, the delta store for Scuttlebutt,
        the transmission buffer for op-based; zero for state-based.
        """

    @abstractmethod
    def metadata_bytes(self) -> int:
        """Synchronization metadata retained in memory, in bytes."""

    @abstractmethod
    def metadata_units(self) -> int:
        """Resident synchronization metadata in the entry metric."""

    def memory_units(self) -> int:
        """Total resident units: state, buffered payload, metadata."""
        return self.state_units() + self.buffer_units() + self.metadata_units()

    def memory_bytes(self) -> int:
        """Total resident bytes: state, buffered payload, and metadata."""
        return self.state_bytes() + self.buffer_bytes() + self.metadata_bytes()

    @abstractmethod
    def buffer_bytes(self) -> int:
        """Byte size of the buffered synchronization payload."""

    # ------------------------------------------------------------------
    # Helpers shared by subclasses.
    # ------------------------------------------------------------------

    def _payload_sizes(self, value: Lattice) -> tuple[int, int]:
        """(units, bytes) of a lattice payload under the size model."""
        return value.size_units(), value.size_bytes(self.size_model)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(replica={self.replica})"


#: A callable building a synchronizer for one node of a cluster.
#:
#: Factories are invoked with keyword arguments — ``replica=``,
#: ``neighbors=``, ``bottom=``, ``n_nodes=``, ``size_model=`` — so a
#: runtime-built replica can never silently transpose positional
#: arguments; every factory must use exactly these parameter names.
SynchronizerFactory = Callable[[int, Sequence[int], Lattice, int, SizeModel], Synchronizer]
