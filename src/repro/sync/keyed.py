"""Per-object delta-based synchronization for multi-object stores.

The Retwis deployment (Section V-C) replicates 30 000 independent CRDT
objects; every object runs its own instance of Algorithm 1 and the
per-round packets between neighbours bundle the per-object δ-groups.
The granularity matters enormously for the *classic* algorithm: its
naive inflation check (line 16) operates per object, so a δ-group for
a cold object that is entirely dominated gets dropped, and only objects
with concurrent updates between synchronization rounds trigger the
redundant re-buffering the paper measures.  That is why classic is
"almost optimal" at Zipf 0.5 and collapses at 1.5 — and modelling the
whole store as one composed CRDT would erase exactly that effect.

:class:`KeyedDeltaBased` implements this: replica state is a
``MapLattice`` keyed by object identifier, the δ-buffer holds
``(object-key, δ, origin)`` triples, and reception applies the classic
check or the RR extraction *per object*.  BP is unchanged (origin tags
travel with each buffered entry).  With RR enabled the extraction uses
the value lattice's ``∆``, which also removes redundancy *inside* one
object's δ-group.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.lattice.base import Lattice
from repro.lattice.map_lattice import MapLattice
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.sync.protocol import DeltaMutator, Message, Send, Synchronizer


class KeyedDeltaBased(Synchronizer):
    """Algorithm 1 instantiated per object of a replicated store.

    The replicated state must be a :class:`MapLattice` from object keys
    to object lattice states (the Retwis store maps object identifiers
    to followers/wall/timeline CRDTs).
    """

    name = "keyed-delta-based"

    def __init__(
        self,
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
        *,
        bp: bool = False,
        rr: bool = False,
    ) -> None:
        if not isinstance(bottom, MapLattice):
            raise TypeError("KeyedDeltaBased replicates a MapLattice object store")
        super().__init__(replica, neighbors, bottom, n_nodes, size_model)
        self.bp = bp
        self.rr = rr
        #: Per-object δ-buffer: (object key, δ, origin) triples.
        self.buffer: List[Tuple[Hashable, Lattice, int]] = []

    # ------------------------------------------------------------------
    # Local updates: split the store delta into per-object entries.
    # ------------------------------------------------------------------

    def local_update(self, delta_mutator: DeltaMutator) -> Lattice:
        delta = delta_mutator(self.state)
        if delta.is_bottom:
            return delta
        assert isinstance(delta, MapLattice)
        self.state = self.state.join(delta)
        for key, object_delta in delta.items():
            self.buffer.append((key, object_delta, self.replica))
        return delta

    # ------------------------------------------------------------------
    # Periodic synchronization: bundle per-object δ-groups.
    # ------------------------------------------------------------------

    def sync_messages(self) -> List[Send]:
        """Bundle per-object δ-groups, one message per neighbour.

        As in :meth:`repro.sync.deltabased.DeltaBased.sync_messages`,
        every neighbour without a BP-excluded buffer entry receives the
        identical bundle, so those destinations share one frozen
        message object — built, sized, and (on a real transport)
        encoded exactly once per tick.
        """
        if not self.buffer:
            return []
        sends: List[Send] = []
        tagged = {origin for _, _, origin in self.buffer} if self.bp else frozenset()
        shared: Optional[Message] = None
        for neighbor in self.neighbors:
            if neighbor in tagged:
                bundle: dict = {}
                for key, object_delta, origin in self.buffer:
                    if origin == neighbor:
                        continue
                    current = bundle.get(key)
                    bundle[key] = (
                        object_delta if current is None else current.join(object_delta)
                    )
                if not bundle:
                    continue
                message = self._bundle_message(MapLattice(bundle))
            else:
                if shared is None:
                    full: dict = {}
                    for key, object_delta, _ in self.buffer:
                        current = full.get(key)
                        full[key] = (
                            object_delta if current is None else current.join(object_delta)
                        )
                    shared = self._bundle_message(MapLattice(full))
                message = shared
            sends.append(Send(dst=neighbor, message=message))
        self.buffer.clear()
        return sends

    def _bundle_message(self, payload: MapLattice) -> Message:
        units, payload_bytes = self._payload_sizes(payload)
        return Message(
            kind="keyed-delta",
            payload=payload,
            payload_units=units,
            payload_bytes=payload_bytes,
            metadata_bytes=self.size_model.int_bytes,
            metadata_units=1,
        )

    # ------------------------------------------------------------------
    # Reception: Algorithm 1's line 14-17, per object.
    # ------------------------------------------------------------------

    def handle_message(self, src: int, message: Message) -> List[Send]:
        received = message.payload
        assert isinstance(received, MapLattice)
        stored: dict = {}
        for key, object_delta in received.items():
            local = self.state.get(key)
            if self.rr:
                extracted = (
                    object_delta if local is None else object_delta.delta(local)
                )
                if not extracted.is_bottom:
                    stored[key] = extracted
            else:
                if local is None or not object_delta.leq(local):
                    # Classic: the whole per-object δ-group is kept.
                    stored[key] = object_delta
        if stored:
            addition = MapLattice(stored)
            self.state = self.state.join(addition)
            for key, object_delta in stored.items():
                self.buffer.append((key, object_delta, src))
        return []

    def absorb_state(self, state: Lattice, src: Optional[int] = None) -> Lattice:
        """Repair absorption: per-object novelty into the δ-buffer.

        The extracted per-object deltas are buffered (tagged with their
        source when known) so repaired content propagates to the other
        neighbours along the normal per-object δ-path.
        """
        assert isinstance(state, MapLattice)
        origin = self.replica if src is None else src
        extracted: dict = {}
        for key, object_value in state.items():
            local = self.state.get(key)
            delta = object_value if local is None else object_value.delta(local)
            if not delta.is_bottom:
                extracted[key] = delta
        if not extracted:
            return self.state.bottom_like()
        addition = MapLattice(extracted)
        self.state = self.state.join(addition)
        for key, object_delta in extracted.items():
            self.buffer.append((key, object_delta, origin))
        return addition

    # ------------------------------------------------------------------
    # Memory accounting.
    # ------------------------------------------------------------------

    def buffer_units(self) -> int:
        return sum(delta.size_units() for _, delta, _ in self.buffer)

    def buffer_bytes(self) -> int:
        model = self.size_model
        return sum(
            model.sizeof(key) + delta.size_bytes(model)
            for key, delta, _ in self.buffer
        )

    def metadata_bytes(self) -> int:
        tags = len(self.buffer) * self.size_model.id_bytes if self.bp else 0
        acks = len(self.neighbors) * self.size_model.int_bytes
        return tags + acks

    def metadata_units(self) -> int:
        tags = len(self.buffer) if self.bp else 0
        return tags + len(self.neighbors)


def _make(label: str, bp: bool, rr: bool):
    def factory(
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
    ) -> KeyedDeltaBased:
        return KeyedDeltaBased(
            replica, neighbors, bottom, n_nodes, size_model, bp=bp, rr=rr
        )

    factory.__name__ = label.replace("-", "_")
    factory.name = label  # type: ignore[attr-defined]
    return factory


#: Classic per-object delta-based synchronization.
keyed_classic = _make("delta-based", bp=False, rr=False)
#: Per-object delta-based with BP only.
keyed_bp = _make("delta-based-bp", bp=True, rr=False)
#: Per-object delta-based with RR only.
keyed_rr = _make("delta-based-rr", bp=False, rr=True)
#: Per-object delta-based with both optimizations.
keyed_bp_rr = _make("delta-based-bp-rr", bp=True, rr=True)
