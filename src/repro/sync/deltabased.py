"""Delta-based synchronization — Algorithm 1 of the paper, all variants.

The classic algorithm (Almeida et al. 2015/2018) keeps a δ-buffer of
deltas produced locally or received from neighbours; each sync step
joins the whole buffer into one δ-group per neighbour, sends it, and
clears the buffer.  A received δ-group is added to the buffer whenever
it *inflates* the local state (line 16) — and that harmless-looking
check is the source of most redundant transmission the paper measures:
a δ-group almost always contains *something* new, so almost everything
gets re-buffered and re-sent wholesale.

The two optimizations (Section IV), each independently toggleable:

* **BP — avoid back-propagation of δ-groups.**  Buffer entries are
  tagged with the neighbour they came from (local updates are tagged
  with the replica itself); the δ-group sent to neighbour ``j`` skips
  entries tagged ``j``.  Sufficient on its own in cycle-free topologies.

* **RR — remove redundant state in received δ-groups.**  Instead of the
  inflation check, extract from the received δ-group exactly the part
  that strictly inflates the local state — ``∆(d, xᵢ)``, computed from
  the join decomposition (Section III) — and buffer only that.  This is
  what rescues topologies with cycles, where the same state reaches a
  node along multiple paths.

Following the paper's presentation, channels are assumed reliable (no
drops; duplication and reordering are fine), so the buffer is cleared
after each synchronization step.  The sequence-number-and-ack extension
for lossy channels is discussed in the paper's Section IV and accounted
for here as one sequence number of metadata per message.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lattice.base import Lattice
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.sync.protocol import DeltaMutator, Message, Send, Synchronizer


class DeltaBased(Synchronizer):
    """Algorithm 1 at one replica, with BP and RR switches.

    Args:
        bp: Enable avoid-back-propagation (tagged buffer entries).
        rr: Enable remove-redundant-state (``∆`` extraction on receive).

    The four paper configurations are ``DeltaBased`` (classic),
    ``bp=True``, ``rr=True``, and ``bp=True, rr=True``; module-level
    factories :func:`classic`, :func:`delta_bp`, :func:`delta_rr` and
    :func:`delta_bp_rr` bind the flags and the paper's plot labels.
    """

    name = "delta-based"

    def __init__(
        self,
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
        *,
        bp: bool = False,
        rr: bool = False,
    ) -> None:
        super().__init__(replica, neighbors, bottom, n_nodes, size_model)
        self.bp = bp
        self.rr = rr
        #: The δ-buffer ``Bᵢ``: (δ-group, origin) pairs — Algorithm 1 line 5.
        #: Classic mode simply ignores the origin tag when sending.
        self.buffer: List[Tuple[Lattice, int]] = []
        #: Per-neighbour sequence counters for the lossy-channel
        #: extension (Section IV): each channel numbers its own
        #: δ-groups, which is the model ``metadata_bytes`` documents —
        #: one sequence number per neighbour, not one shared counter.
        self._sequences: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Algorithm 1, line 6-8: on operationᵢ(mδ).
    # ------------------------------------------------------------------

    def local_update(self, delta_mutator: DeltaMutator) -> Lattice:
        delta = delta_mutator(self.state)
        if not delta.is_bottom:
            self._store(delta, self.replica)
        return delta

    # ------------------------------------------------------------------
    # Algorithm 1, line 9-13: periodic synchronization.
    # ------------------------------------------------------------------

    def sync_messages(self) -> List[Send]:
        """Join the buffer into one δ-group per neighbour and clear it.

        With BP enabled, entries tagged with the destination are
        filtered out (line 11, right-hand variant); classic joins the
        whole buffer for everyone.

        Every neighbour without a BP-excluded buffer entry receives the
        *same* δ-group — the join of the whole buffer, in buffer order —
        so those destinations share one frozen message object, sized
        once and (on a real transport) encoded once; see
        :func:`repro.codec.frame_message`.  Only neighbours that
        actually tagged a buffer entry get a private filtered group.
        """
        if not self.buffer:
            return []
        sends: List[Send] = []
        tagged = {origin for _, origin in self.buffer} if self.bp else frozenset()
        shared: Optional[Message] = None
        for neighbor in self.neighbors:
            if neighbor in tagged:
                group = self.bottom
                for delta, origin in self.buffer:
                    if origin == neighbor:
                        continue
                    group = group.join(delta)
                if group.is_bottom:
                    continue
                message = self._group_message(group)
            else:
                if shared is None:
                    group = self.bottom
                    for delta, _ in self.buffer:
                        group = group.join(delta)
                    shared = self._group_message(group)
                message = shared
            self._sequences[neighbor] = self._sequences.get(neighbor, 0) + 1
            sends.append(Send(dst=neighbor, message=message))
        self.buffer.clear()
        return sends

    def _group_message(self, group: Lattice) -> Message:
        units, payload_bytes = self._payload_sizes(group)
        return Message(
            kind="delta",
            payload=group,
            payload_units=units,
            payload_bytes=payload_bytes,
            metadata_bytes=self.size_model.int_bytes,
            metadata_units=1,
        )

    # ------------------------------------------------------------------
    # Algorithm 1, line 14-17: on receive.
    # ------------------------------------------------------------------

    def handle_message(self, src: int, message: Message) -> List[Send]:
        received: Lattice = message.payload
        if self.rr:
            # Line 15: d = ∆(d, xᵢ) — keep only what strictly inflates.
            extracted = received.delta(self.state)
            # Line 16 (RR): if d ≠ ⊥.
            if not extracted.is_bottom:
                self._store(extracted, src)
        else:
            # Line 16 (classic): if d ⋢ xᵢ — the naive inflation check.
            if received.inflates(self.state):
                self._store(received, src)
        return []

    def absorb_state(self, state: Lattice, src: Optional[int] = None) -> Lattice:
        """Repair absorption: buffer the novelty so it propagates on.

        Extracting ``∆(state, xᵢ)`` is the RR treatment of a received
        state; storing it (tagged with its source when known) lets the
        repaired content ride the normal δ-path to other neighbours
        instead of silently bypassing the buffer.
        """
        extracted = state.delta(self.state)
        if not extracted.is_bottom:
            self._store(extracted, self.replica if src is None else src)
        return extracted

    # ------------------------------------------------------------------
    # Algorithm 1, line 18-20: store(s, o).
    # ------------------------------------------------------------------

    def _store(self, delta: Lattice, origin: int) -> None:
        self.state = self.state.join(delta)
        self.buffer.append((delta, origin))

    # ------------------------------------------------------------------
    # Memory accounting.
    # ------------------------------------------------------------------

    def buffer_units(self) -> int:
        return sum(delta.size_units() for delta, _ in self.buffer)

    def buffer_bytes(self) -> int:
        return sum(delta.size_bytes(self.size_model) for delta, _ in self.buffer)

    def metadata_bytes(self) -> int:
        """Origin tags on buffer entries (BP) plus one seq per neighbour."""
        tags = len(self.buffer) * self.size_model.id_bytes if self.bp else 0
        acks = len(self.neighbors) * self.size_model.int_bytes
        return tags + acks

    def metadata_units(self) -> int:
        """One entry per origin tag (BP) plus one seq per neighbour."""
        tags = len(self.buffer) if self.bp else 0
        return tags + len(self.neighbors)


def _make(label: str, bp: bool, rr: bool):
    """Build a named factory with the flags bound, for the registry."""

    def factory(
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
    ) -> DeltaBased:
        synchronizer = DeltaBased(
            replica, neighbors, bottom, n_nodes, size_model, bp=bp, rr=rr
        )
        return synchronizer

    factory.__name__ = label.replace("-", "_")
    factory.name = label  # type: ignore[attr-defined]
    return factory


#: Classic delta-based synchronization (no optimizations).
classic = _make("delta-based", bp=False, rr=False)
#: Delta-based with avoid-back-propagation only.
delta_bp = _make("delta-based-bp", bp=True, rr=False)
#: Delta-based with remove-redundant-state only.
delta_rr = _make("delta-based-rr", bp=False, rr=True)
#: Delta-based with both optimizations — the paper's best configuration.
delta_bp_rr = _make("delta-based-bp-rr", bp=True, rr=True)
