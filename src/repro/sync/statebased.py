"""State-based synchronization: periodic full-state push (Section II).

Each replica applies updates locally and periodically sends its *entire*
lattice state to every neighbour; receivers join it into their own
state.  Tolerant of message loss, duplication, and reordering — and
maximally wasteful of bandwidth as the state grows, which is the
pathology the paper's Figure 1 demonstrates and delta-based
synchronization was invented to fix.

State-based needs no synchronization metadata at all, which is why the
paper treats it as the memory-footprint optimum in Figure 10.
"""

from __future__ import annotations

from typing import List

from repro.lattice.base import Lattice
from repro.sync.protocol import DeltaMutator, Message, Send, Synchronizer


class StateBased(Synchronizer):
    """Full-state periodic synchronization."""

    name = "state-based"

    def local_update(self, delta_mutator: DeltaMutator) -> Lattice:
        delta = delta_mutator(self.state)
        self.state = self.state.join(delta)
        return delta

    def sync_messages(self) -> List[Send]:
        """Push the full local state to every neighbour."""
        if self.state.is_bottom:
            return []
        units, payload_bytes = self._payload_sizes(self.state)
        message = Message(
            kind="state",
            payload=self.state,
            payload_units=units,
            payload_bytes=payload_bytes,
            metadata_bytes=0,
        )
        return [Send(dst=neighbor, message=message) for neighbor in self.neighbors]

    def handle_message(self, src: int, message: Message) -> List[Send]:
        """Join the received full state; nothing to reply."""
        received = message.payload
        self.state = self.state.join(received)
        return []

    # ------------------------------------------------------------------
    # Memory accounting: no buffers, no metadata.
    # ------------------------------------------------------------------

    def buffer_units(self) -> int:
        return 0

    def buffer_bytes(self) -> int:
        return 0

    def metadata_bytes(self) -> int:
        return 0

    def metadata_units(self) -> int:
        return 0
