"""Delta-based synchronization over lossy channels (acked δ-buffer).

Algorithm 1 assumes reliable channels "for simplicity of presentation"
and clears the δ-buffer after every synchronization step; the paper
notes (Section IV) that the assumption is removed "by simply tagging
each entry in the δ-buffer with a unique sequence number, and by
exchanging acks between replicas: once an entry has been acknowledged
by every neighbour, it is removed from the δ-buffer, as originally
proposed" in the delta-CRDT papers (Almeida et al.).

:class:`DeltaBasedAcked` implements exactly that extension, composed
with the BP and RR optimizations:

* every buffered entry carries a local sequence number;
* the δ-group sent to neighbour ``j`` joins the entries ``j`` has not
  acknowledged (BP additionally skips entries that came from ``j``),
  and lists the sequence numbers it covers;
* the receiver extracts the novelty (RR) or applies the inflation check
  (classic), then acknowledges the covered sequence numbers;
* an entry leaves the buffer once every neighbour that needs it has
  acknowledged it.

Losing a message merely delays convergence: the unacknowledged entries
ride along with the next synchronization step.  Duplicates are harmless
(joins are idempotent; acks are set unions).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.lattice.base import Lattice
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL
from repro.sync.protocol import DeltaMutator, Message, Send, Synchronizer


class DeltaBasedAcked(Synchronizer):
    """Algorithm 1 with a sequence-numbered, acknowledgement-pruned buffer.

    Args:
        bp: Skip sending entries back to the neighbour they came from.
        rr: Extract ``∆(d, xᵢ)`` from received δ-groups before buffering.
    """

    name = "delta-based-acked"

    def __init__(
        self,
        replica: int,
        neighbors: Sequence[int],
        bottom: Lattice,
        n_nodes: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
        *,
        bp: bool = True,
        rr: bool = True,
    ) -> None:
        super().__init__(replica, neighbors, bottom, n_nodes, size_model)
        self.bp = bp
        self.rr = rr
        #: Sequence-numbered δ-buffer: seq → (δ, origin).
        self.buffer: Dict[int, Tuple[Lattice, int]] = {}
        #: Per-neighbour acknowledged sequence numbers.
        self.acked: Dict[int, Set[int]] = {j: set() for j in self.neighbors}
        self._next_seq = 0

    # ------------------------------------------------------------------
    # Updates and synchronization.
    # ------------------------------------------------------------------

    def local_update(self, delta_mutator: DeltaMutator) -> Lattice:
        delta = delta_mutator(self.state)
        if not delta.is_bottom:
            self._store(delta, self.replica)
        return delta

    def sync_messages(self) -> List[Send]:
        sends: List[Send] = []
        for neighbor in self.neighbors:
            covered: List[int] = []
            group = self.bottom
            for seq, (delta, origin) in self.buffer.items():
                if seq in self.acked[neighbor]:
                    continue
                if self.bp and origin == neighbor:
                    continue
                covered.append(seq)
                group = group.join(delta)
            if not covered:
                continue
            units, payload_bytes = self._payload_sizes(group)
            sends.append(
                Send(
                    dst=neighbor,
                    message=Message(
                        kind="delta-seq",
                        payload=(group, tuple(covered)),
                        payload_units=units,
                        payload_bytes=payload_bytes,
                        metadata_bytes=len(covered) * self.size_model.int_bytes,
                        metadata_units=len(covered),
                    ),
                )
            )
        return sends

    def handle_message(self, src: int, message: Message) -> List[Send]:
        if message.kind == "delta-seq":
            group, covered = message.payload
            if self.rr:
                extracted = group.delta(self.state)
                if not extracted.is_bottom:
                    self._store(extracted, src)
            else:
                if group.inflates(self.state):
                    self._store(group, src)
            ack = Message(
                kind="delta-ack",
                payload=tuple(covered),
                payload_units=0,
                payload_bytes=0,
                metadata_bytes=len(covered) * self.size_model.int_bytes,
                metadata_units=len(covered),
            )
            return [Send(dst=src, message=ack)]
        if message.kind == "delta-ack":
            self._acknowledge(src, message.payload)
            return []
        raise ValueError(f"unexpected message kind {message.kind!r}")

    # ------------------------------------------------------------------
    # Buffer management.
    # ------------------------------------------------------------------

    def _store(self, delta: Lattice, origin: int) -> None:
        self.state = self.state.join(delta)
        self.buffer[self._next_seq] = (delta, origin)
        self._next_seq += 1

    def _acknowledge(self, neighbor: int, seqs: Sequence[int]) -> None:
        self.acked[neighbor].update(seqs)
        self._prune()

    def _prune(self) -> None:
        """Drop entries every relevant neighbour has acknowledged.

        With BP, the entry's origin neighbour never needs to ack — the
        entry is never sent back to it.
        """
        done = []
        for seq, (_, origin) in self.buffer.items():
            needed = [
                j for j in self.neighbors if not (self.bp and j == origin)
            ]
            if all(seq in self.acked[j] for j in needed):
                done.append(seq)
        for seq in done:
            del self.buffer[seq]
            for j in self.neighbors:
                self.acked[j].discard(seq)

    # ------------------------------------------------------------------
    # Memory accounting.
    # ------------------------------------------------------------------

    def buffer_units(self) -> int:
        return sum(delta.size_units() for delta, _ in self.buffer.values())

    def buffer_bytes(self) -> int:
        return sum(
            delta.size_bytes(self.size_model) for delta, _ in self.buffer.values()
        )

    def metadata_bytes(self) -> int:
        seqs = len(self.buffer) * self.size_model.int_bytes
        tags = len(self.buffer) * self.size_model.id_bytes
        acks = sum(len(s) for s in self.acked.values()) * self.size_model.int_bytes
        return seqs + tags + acks

    def metadata_units(self) -> int:
        return 2 * len(self.buffer) + sum(len(s) for s in self.acked.values())


def delta_acked_factory(
    replica: int,
    neighbors: Sequence[int],
    bottom: Lattice,
    n_nodes: int,
    size_model: SizeModel = DEFAULT_SIZE_MODEL,
) -> DeltaBasedAcked:
    """Factory for the default (BP+RR) acked configuration."""
    return DeltaBasedAcked(replica, neighbors, bottom, n_nodes, size_model)


delta_acked_factory.name = "delta-based-acked"  # type: ignore[attr-defined]
