"""Synchronization protocols for state-based CRDTs.

Implements every synchronization mechanism evaluated in the paper
(Section V), behind one :class:`~repro.sync.protocol.Synchronizer`
interface so the simulator and benchmark harness can swap them freely:

* ``state-based`` — periodic full-state push (Section II);
* ``delta-based`` — Algorithm 1: the classic algorithm plus the BP
  (avoid back-propagation) and RR (remove redundant state) optimizations
  in any combination (Section IV);
* ``scuttlebutt`` / ``scuttlebutt-gc`` — anti-entropy reconciliation
  over a versioned delta store, with and without the safe-delete
  knowledge matrix (Section V-B);
* ``op-based`` — causal-broadcast middleware with store-and-forward
  and duplicate suppression (Section V-B);
* ``digest-driven`` / ``state-driven`` — the pairwise partition-recovery
  protocols the paper builds on (Section VI; Enes et al., PMLDC 2016);
* ``merkle`` — hash-prefix-trie anti-entropy, the related-work baseline
  of Section VI (Demers et al. / Byers et al.), for measuring the
  round-trip and hashing overhead the paper attributes to it.
"""

from repro.sync.protocol import Message, Send, Synchronizer, SynchronizerFactory
from repro.sync.statebased import StateBased
from repro.sync.deltabased import DeltaBased, classic, delta_bp, delta_bp_rr, delta_rr
from repro.sync.scuttlebutt import Scuttlebutt, ScuttlebuttGC
from repro.sync.opbased import OpBased
from repro.sync.keyed import (
    KeyedDeltaBased,
    keyed_bp,
    keyed_bp_rr,
    keyed_classic,
    keyed_rr,
)
from repro.sync.merkle import MerkleSync
from repro.sync.reliable import DeltaBasedAcked, delta_acked_factory
from repro.sync.digest import (
    DigestExchange,
    digest_driven_sync,
    state_driven_sync,
    full_state_sync,
)

ALGORITHMS = {
    "state-based": StateBased,
    "delta-based": classic,
    "delta-based-bp": delta_bp,
    "delta-based-rr": delta_rr,
    "delta-based-bp-rr": delta_bp_rr,
    "scuttlebutt": Scuttlebutt,
    "scuttlebutt-gc": ScuttlebuttGC,
    "op-based": OpBased,
}
"""Registry of synchronizer factories keyed by the paper's labels."""

#: Extension protocols beyond the paper's evaluated set.
EXTRA_ALGORITHMS = {
    "merkle": MerkleSync,
    "delta-based-acked": delta_acked_factory,
}

__all__ = [
    "Message",
    "Send",
    "Synchronizer",
    "SynchronizerFactory",
    "StateBased",
    "DeltaBased",
    "classic",
    "delta_bp",
    "delta_rr",
    "delta_bp_rr",
    "Scuttlebutt",
    "ScuttlebuttGC",
    "OpBased",
    "DeltaBasedAcked",
    "delta_acked_factory",
    "MerkleSync",
    "EXTRA_ALGORITHMS",
    "KeyedDeltaBased",
    "keyed_classic",
    "keyed_bp",
    "keyed_rr",
    "keyed_bp_rr",
    "DigestExchange",
    "digest_driven_sync",
    "state_driven_sync",
    "full_state_sync",
    "ALGORITHMS",
]
