"""Pairwise state-driven and digest-driven synchronization.

Section VI of the paper situates its contribution next to two pairwise
protocols the same authors proposed for synchronizing replicas after a
network partition (Enes et al., PMLDC@ECOOP 2016), both of which also
exploit join decompositions:

* **state-driven**: A sends its full state to B; B joins it, computes
  the optimal delta ``∆(x_B, x_A)`` covering what A missed, and sends it
  back.  Convergence in 2 messages, but the first one is a full state.

* **digest-driven**: A sends only a *digest* of its state — enough for
  B to decide which of its own irreducibles A is missing; B replies
  with that delta plus a digest of its own state, and A answers with
  the delta B misses.  Convergence in 3 messages, none of which carries
  a full state.

The digest implemented here is the set of collision-resistant 8-byte
fingerprints of the state's join decomposition: ``{h(r) | r ∈ ⇓x}``.
A peer computes the exact delta by keeping the irreducibles whose
fingerprint the digest lacks.  Digests are therefore proportional to
the *number* of irreducibles, not their size — a large win when
elements are big (tweets) and states mostly overlap.

These functions operate directly on two replicas' states and report
the bytes each strategy moved, which the partition-recovery example and
the ablation benchmarks use.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.lattice.base import Lattice
from repro.lattice.map_lattice import MapLattice
from repro.sizes import SizeModel, DEFAULT_SIZE_MODEL

#: Bytes per digest fingerprint.
FINGERPRINT_BYTES = 8
#: Bytes per digest *root* — the probe-sized summary of a whole digest.
ROOT_BYTES = 16


def fingerprint(irreducible: Lattice) -> bytes:
    """A stable 8-byte fingerprint of a join-irreducible state.

    Uses BLAKE2b over the canonical ``repr`` (reprs in this library sort
    their contents, so equal values always print identically), which is
    deterministic across processes — unlike built-in ``hash`` under
    string-hash randomization.
    """
    return hashlib.blake2b(repr(irreducible).encode("utf-8"), digest_size=FINGERPRINT_BYTES).digest()


def digest_of(state: Lattice) -> FrozenSet[bytes]:
    """The digest of a state: fingerprints of its decomposition."""
    return frozenset(fingerprint(r) for r in state.decompose())


def delta_against_digest(state: Lattice, remote_digest: FrozenSet[bytes]) -> Lattice:
    """Join of the irreducibles of ``state`` the digest does not cover."""
    acc = state.bottom_like()
    for irreducible in state.decompose():
        if fingerprint(irreducible) not in remote_digest:
            acc = acc.join(irreducible)
    return acc


def root_of(digest: FrozenSet[bytes]) -> bytes:
    """One hash summarizing a whole digest — the O(1)-to-compare probe.

    Equal states decompose to equal digests and therefore equal roots,
    so two replicas can rule out divergence by exchanging ``ROOT_BYTES``
    instead of the full fingerprint set; a mismatch escalates to the
    digest itself.
    """
    hasher = hashlib.blake2b(digest_size=ROOT_BYTES)
    for entry in sorted(digest):
        hasher.update(entry)
    return hasher.digest()


def digest_and_missing(
    state: Lattice, remote_digest: FrozenSet[bytes]
) -> Tuple[FrozenSet[bytes], Lattice]:
    """Both sides of a diff reply, in one decomposition pass.

    Returns ``(digest_of(state), delta_against_digest(state,
    remote_digest))`` while fingerprinting every irreducible exactly
    once — what a responder announces about itself and what it ships
    because the remote digest lacks it.
    """
    fingerprints = []
    acc = state.bottom_like()
    for irreducible in state.decompose():
        entry = fingerprint(irreducible)
        fingerprints.append(entry)
        if entry not in remote_digest:
            acc = acc.join(irreducible)
    return frozenset(fingerprints), acc


class IncrementalDigest:
    """An incrementally maintained digest/root of one evolving state.

    The sharded store needs ``root_of(digest_of(state))`` on every
    digest probe, handoff round-trip, and convergence-lag sample — a
    full decomposition plus one BLAKE2b per irreducible each time, even
    when nothing changed since the last ask.  This cache exploits two
    library-wide invariants instead:

    * lattice values are immutable, so an object-identity check is a
      sound staleness signal, and
    * :meth:`MapLattice.join` / ``with_entry`` reuse the value objects
      of untouched keys, so after an inflation only the touched keys'
      bindings are new objects (the same reuse
      ``repro.kv.store._keyspace_novelty`` builds on).

    ``refresh`` walks the map's bindings once, comparing identity
    against the last-seen value per key, and re-fingerprints only the
    keys that changed.  Fingerprints are kept as a multiset (the same
    fingerprint may in principle repeat across keys), so removing a
    key's old contribution cannot drop another key's identical entry.
    The digest and its root are rebuilt lazily and only when a refresh
    actually changed something; asking again for an unchanged state is
    one identity check.

    For non-map states there is no per-key reuse to exploit, so the
    cache degrades to a full recompute memoized on the state object.

    The cached values are definitionally equal to ``digest_of(state)``
    and ``root_of(digest_of(state))``: the per-key fingerprints hash
    exactly the ``MapLattice({key: irreducible})`` singletons that
    :meth:`MapLattice.decompose` yields.  The property-test suite
    asserts this equality after arbitrary mutation sequences across
    every lattice family.
    """

    __slots__ = ("_state", "_values", "_counts", "_digest", "_root")

    def __init__(self) -> None:
        #: The state object the cached fingerprints reflect.
        self._state: Optional[Lattice] = None
        #: key → (last-seen value object, its fingerprint tuple).
        self._values: Dict = {}
        #: fingerprint → multiplicity across keys (multiset semantics).
        self._counts: Dict[bytes, int] = {}
        self._digest: Optional[FrozenSet[bytes]] = None
        self._root: Optional[bytes] = None

    def digest(self, state: Lattice) -> FrozenSet[bytes]:
        """``digest_of(state)``, reusing unchanged keys' fingerprints."""
        self._refresh(state)
        if self._digest is None:
            self._digest = frozenset(self._counts)
        return self._digest

    def root(self, state: Lattice) -> bytes:
        """``root_of(digest_of(state))``, O(1) when nothing changed."""
        self._refresh(state)
        if self._root is None:
            self._root = root_of(self.digest(state))
        return self._root

    def _forget(self, fps: Tuple[bytes, ...]) -> None:
        counts = self._counts
        for fp in fps:
            remaining = counts[fp] - 1
            if remaining:
                counts[fp] = remaining
            else:
                del counts[fp]

    def _refresh(self, state: Lattice) -> None:
        if state is self._state:
            return
        if not isinstance(state, MapLattice):
            self._values = {}
            self._counts = {}
            self._digest = digest_of(state)
            self._root = None
            self._state = state
            return
        entries = state.entries
        values = self._values
        counts = self._counts
        changed = False
        if values:
            # Keys only vanish when the tracked state was replaced
            # outright (rebuild, shard swap) rather than inflated.
            stale = [key for key in values if key not in entries]
            for key in stale:
                _, fps = values.pop(key)
                self._forget(fps)
                changed = True
        for key, value in entries.items():
            known = values.get(key)
            if known is not None and known[0] is value:
                continue
            if known is not None:
                self._forget(known[1])
            fps = tuple(
                fingerprint(MapLattice({key: irreducible}))
                for irreducible in value.decompose()
            )
            values[key] = (value, fps)
            for fp in fps:
                counts[fp] = counts.get(fp, 0) + 1
            changed = True
        if changed:
            self._digest = None
            self._root = None
        self._state = state


@dataclass(frozen=True)
class DigestExchange:
    """Outcome of a pairwise synchronization: traffic and convergence.

    Attributes:
        strategy: ``"full"``, ``"state-driven"``, or ``"digest-driven"``.
        messages: Number of messages exchanged.
        bytes_sent: Total bytes moved (payload plus digests).
        converged_state: The common state both replicas hold afterwards.
    """

    strategy: str
    messages: int
    bytes_sent: int
    converged_state: Lattice


def full_state_sync(
    state_a: Lattice, state_b: Lattice, model: SizeModel = DEFAULT_SIZE_MODEL
) -> DigestExchange:
    """Baseline: bidirectional full-state exchange (2 full states)."""
    joined = state_a.join(state_b)
    traffic = state_a.size_bytes(model) + state_b.size_bytes(model)
    return DigestExchange("full", messages=2, bytes_sent=traffic, converged_state=joined)


def state_driven_sync(
    state_a: Lattice, state_b: Lattice, model: SizeModel = DEFAULT_SIZE_MODEL
) -> DigestExchange:
    """A ships its state; B replies with the optimal missing delta."""
    # Message 1: A → B, full state.
    first = state_a.size_bytes(model)
    b_after = state_b.join(state_a)
    # Message 2: B → A, ∆(x_B, x_A) — exactly what A lacks.
    back = state_b.delta(state_a)
    second = back.size_bytes(model)
    a_after = state_a.join(back)
    assert a_after == b_after, "state-driven sync must converge"
    return DigestExchange(
        "state-driven", messages=2, bytes_sent=first + second, converged_state=a_after
    )


def digest_driven_sync(
    state_a: Lattice, state_b: Lattice, model: SizeModel = DEFAULT_SIZE_MODEL
) -> DigestExchange:
    """Three-way sync where no message carries a full state."""
    # Message 1: A → B, digest of A.
    digest_a = digest_of(state_a)
    first = len(digest_a) * FINGERPRINT_BYTES
    # Message 2: B → A, the delta A misses plus B's digest.
    delta_for_a = delta_against_digest(state_b, digest_a)
    digest_b = digest_of(state_b)
    second = delta_for_a.size_bytes(model) + len(digest_b) * FINGERPRINT_BYTES
    a_after = state_a.join(delta_for_a)
    # Message 3: A → B, the delta B misses.
    delta_for_b = delta_against_digest(state_a, digest_b)
    third = delta_for_b.size_bytes(model)
    b_after = state_b.join(delta_for_b)
    assert a_after == b_after, "digest-driven sync must converge"
    return DigestExchange(
        "digest-driven",
        messages=3,
        bytes_sent=first + second + third,
        converged_state=a_after,
    )
