"""Causal (resettable) counter: ``DotFun⟨MaxInt⟩``.

A counter supporting increments *and* a reset that zeroes the observed
count while letting concurrent increments survive — the semantics
behind shopping-cart quantities and resettable metrics.  Each replica
keeps its running tally under a single live dot; an increment replaces
the replica's own dot with a fresh one carrying the larger tally, and a
reset covers every observed dot.

The increment delta is a single dot-value pair — constant size, like
the paper's optimal GCounter ``incδ`` — and the reset delta carries no
payload at all, only the covered dots in its causal context.

One caveat inherited from the classic construction (the *embedded
counter* anomaly, Baquero et al., PaPoC 2016): because an increment
carries its replica's running tally onto the fresh dot, a reset
concurrent with replica *i*'s increment cancels nothing of *i*'s tally
— the observed portion rides along under the new dot.  Increments by
replicas the reset did observe (and that stayed quiet) are zeroed as
expected.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set

from repro.causal.causal import Causal
from repro.causal.dots import CausalContext, Dot
from repro.causal.stores import DotFun
from repro.crdt.base import Crdt
from repro.lattice.primitives import MaxInt


class CCounter(Crdt):
    """A resettable grow-only counter with optimal deltas.

    >>> a, b, c = CCounter("A"), CCounter("B"), CCounter("C")
    >>> _ = a.increment(3)
    >>> b.merge(a)
    >>> _ = b.reset()                      # observed a's 3, zeroes it
    >>> _ = c.increment(2)                 # concurrent, unobserved
    >>> a.merge(b); a.merge(c)
    >>> a.value
    2
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: Causal | None = None) -> None:
        super().__init__(replica, state if state is not None else Causal.fun_bottom())

    @staticmethod
    def bottom() -> Causal:
        """The zero counter."""
        return Causal.fun_bottom()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def increment(self, by: int = 1) -> Causal:
        """Count ``by`` more; returns the optimal delta."""
        delta = self.increment_delta(self.state, by)
        return self.apply_delta(delta)

    def reset(self) -> Causal:
        """Zero the observed count; returns the optimal delta."""
        delta = self.reset_delta(self.state)
        return self.apply_delta(delta)

    def increment_delta(self, state: Causal, by: int = 1) -> Causal:
        """δ-mutator: move this replica's tally onto a fresh dot."""
        if by <= 0:
            raise ValueError(f"increment must be positive, got {by}")
        own = self._own_entry(state)
        covered: Set[Dot] = set()
        tally = by
        if own is not None:
            own_dot, own_value = own
            covered.add(own_dot)
            tally += own_value.value
        dot = state.context.next_dot(self.replica)
        covered.add(dot)
        return Causal(DotFun({dot: MaxInt(tally)}), CausalContext.from_dots(covered))

    def reset_delta(self, state: Causal) -> Causal:
        """δ-mutator: cover every observed tally dot, shipping no payload."""
        dots = state.store.dots()
        if not dots:
            return state.bottom_like()
        return Causal(DotFun(), CausalContext.from_dots(dots))

    def _own_entry(self, state: Causal) -> Optional[tuple]:
        """This replica's single live (dot, tally) entry, if any."""
        assert isinstance(state.store, DotFun)
        for dot, value in state.store.items():
            if dot.replica == self.replica:
                return dot, value
        return None

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def value(self) -> int:
        """The sum of every surviving per-replica tally."""
        assert isinstance(self.state.store, DotFun)
        return sum(entry.value for entry in self.state.store.values())
