"""Dot stores: the payload half of a causal CRDT state.

A causal CRDT state is a pair (dot store, causal context); the join of
two states resolves, dot by dot, whether an event is *unseen* (keep the
payload), *seen and kept* (keep it), or *seen and removed* (drop it —
the dot is in the other context but not its store).  Following the
delta-CRDT catalog (Almeida et al., JPDC 2018) there are three store
shapes, closed under nesting:

* :class:`DotSet` — a set of bare dots (flags, per-element presence);
* :class:`DotFun` — a map from dots to values of some lattice
  (multi-value registers, causal counters);
* :class:`DotMap` — a map from keys to nested dot stores (observed-
  remove sets and maps).

Store joins take *both* causal contexts as parameters because the
dead-or-unseen question can only be answered against the contexts; the
:class:`~repro.causal.causal.Causal` wrapper owns the contexts and is
the actual :class:`~repro.lattice.base.Lattice`.

Per-dot, the reachable states form a chain — unseen, then live
(possibly climbing the value lattice), then removed — so the composite
causal lattice is a product of chains lifted over the value lattices:
distributive and DCC, which by Proposition 1 of the paper guarantees
unique irredundant decompositions.  :meth:`DotStore.irreducibles`
yields exactly the live per-dot fragments those decompositions are made
of.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Tuple

from repro.causal.dots import CausalContext, Dot
from repro.lattice.base import Lattice

if TYPE_CHECKING:  # pragma: no cover
    from repro.sizes import SizeModel


class DotStore(ABC):
    """Common interface of the three dot-store shapes.

    Stores are immutable; every operation returns a new store.  They are
    *not* lattices on their own — ``join`` needs the causal contexts —
    which is why they do not subclass :class:`Lattice`.
    """

    __slots__ = ()

    @abstractmethod
    def dots(self) -> FrozenSet[Dot]:
        """Every dot held live in the store (recursively)."""

    @property
    @abstractmethod
    def is_empty(self) -> bool:
        """True when the store holds no dots."""

    @abstractmethod
    def bottom_like(self) -> "DotStore":
        """The empty store of the same shape."""

    @abstractmethod
    def join(
        self, other: "DotStore", own_cc: CausalContext, other_cc: CausalContext
    ) -> "DotStore":
        """The causal join: keep common and unseen dots, drop removed ones."""

    @abstractmethod
    def irreducibles(self) -> Iterator[Tuple["DotStore", Dot]]:
        """The live join-irreducible fragments, each carrying one dot.

        Joining every yielded fragment (under contexts equal to their
        own dots) rebuilds the store; the Causal wrapper appends the
        context-only tombstone fragments to complete ``⇓x``.
        """

    @abstractmethod
    def delta_live(self, other: "DotStore", other_cc: CausalContext) -> "DotStore":
        """The live part of ``∆``: fragments of ``self`` not below ``other``.

        Keeps dots the other context has never seen, and — for value-
        carrying stores — the value increments on dots live in both.
        Dots the other side has seen-and-removed are dropped (the
        removal is above any payload for that dot).
        """

    @abstractmethod
    def leq_live(self, other: "DotStore", own_cc: CausalContext) -> bool:
        """The live half of the causal partial order.

        Given that ``own_cc ⊆ other_cc`` (checked by the caller), the
        join equals ``other`` iff no dot that ``self`` has observed
        (``own_cc``) but removed is still live in ``other``, and common
        live dots carry values below the other's.
        """

    @abstractmethod
    def size_units(self) -> int:
        """Store size in the paper's entry metric."""

    @abstractmethod
    def size_bytes(self, model: "SizeModel") -> int:
        """Approximate serialized size of the store."""


class DotSet(DotStore):
    """A set of bare dots — the store of flags and presence markers.

    >>> a, b = DotSet([Dot("A", 1)]), DotSet([Dot("B", 1)])
    >>> ca = CausalContext.from_dots([Dot("A", 1)])
    >>> cb = CausalContext.from_dots([Dot("B", 1)])
    >>> sorted(a.join(b, ca, cb).dots()) == [Dot("A", 1), Dot("B", 1)]
    True
    """

    __slots__ = ("_dots",)

    def __init__(self, dots: Iterable[Dot] = ()) -> None:
        object.__setattr__(self, "_dots", frozenset(dots))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def dots(self) -> FrozenSet[Dot]:
        return self._dots

    @property
    def is_empty(self) -> bool:
        return not self._dots

    def bottom_like(self) -> "DotSet":
        return _EMPTY_DOTSET

    def join(
        self, other: "DotSet", own_cc: CausalContext, other_cc: CausalContext
    ) -> "DotSet":
        common = self._dots & other._dots
        mine = {d for d in self._dots - other._dots if not other_cc.contains(d)}
        theirs = {d for d in other._dots - self._dots if not own_cc.contains(d)}
        return DotSet(common | mine | theirs)

    def irreducibles(self) -> Iterator[Tuple["DotSet", Dot]]:
        for dot in self._dots:
            yield DotSet((dot,)), dot

    def delta_live(self, other: "DotSet", other_cc: CausalContext) -> "DotSet":
        return DotSet(d for d in self._dots if not other_cc.contains(d))

    def leq_live(self, other: "DotStore", own_cc: CausalContext) -> bool:
        return all(
            dot in self._dots for dot in other.dots() if own_cc.contains(dot)
        )

    def size_units(self) -> int:
        return len(self._dots)

    def size_bytes(self, model: "SizeModel") -> int:
        return len(self._dots) * model.vector_entry_bytes()

    def __contains__(self, dot: Dot) -> bool:
        return dot in self._dots

    def __len__(self) -> int:
        return len(self._dots)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DotSet) and self._dots == other._dots

    def __hash__(self) -> int:
        return hash((DotSet, self._dots))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{d.replica!r}.{d.counter}"
            for d in sorted(self._dots, key=lambda d: (repr(d.replica), d.counter))
        )
        return f"DotSet({{{inner}}})"


class DotFun(DotStore):
    """A map from dots to lattice values — registers and causal counters.

    The entry for a dot is the payload written by that event; joins
    merge common entries with the value lattice's join (well-defined
    because each event writes through one replica, and concurrent
    entries live under distinct dots).  Bottom-valued entries are
    rejected: a dot mapping to ``⊥`` would be indistinguishable from a
    removed dot after a round-trip through the context.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Mapping[Dot, Lattice] | None = None) -> None:
        items: Dict[Dot, Lattice] = dict(entries or {})
        for dot, value in items.items():
            if value.is_bottom:
                raise ValueError(f"DotFun entry {dot} maps to bottom")
        object.__setattr__(self, "entries", items)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def dots(self) -> FrozenSet[Dot]:
        return frozenset(self.entries)

    @property
    def is_empty(self) -> bool:
        return not self.entries

    def bottom_like(self) -> "DotFun":
        return _EMPTY_DOTFUN

    def join(
        self, other: "DotFun", own_cc: CausalContext, other_cc: CausalContext
    ) -> "DotFun":
        merged: Dict[Dot, Lattice] = {}
        for dot, value in self.entries.items():
            theirs = other.entries.get(dot)
            if theirs is not None:
                merged[dot] = value.join(theirs)
            elif not other_cc.contains(dot):
                merged[dot] = value
        for dot, value in other.entries.items():
            if dot not in self.entries and not own_cc.contains(dot):
                merged[dot] = value
        return DotFun(merged)

    def irreducibles(self) -> Iterator[Tuple["DotFun", Dot]]:
        for dot, value in self.entries.items():
            for part in value.decompose():
                yield DotFun({dot: part}), dot

    def delta_live(self, other: "DotFun", other_cc: CausalContext) -> "DotFun":
        out: Dict[Dot, Lattice] = {}
        for dot, value in self.entries.items():
            if not other_cc.contains(dot):
                out[dot] = value
                continue
            theirs = other.entries.get(dot)
            if theirs is None:
                continue  # seen and removed there: removal covers any payload
            increment = value.delta(theirs)
            if not increment.is_bottom:
                out[dot] = increment
        return DotFun(out)

    def leq_live(self, other: "DotStore", own_cc: CausalContext) -> bool:
        assert isinstance(other, DotFun)
        for dot, value in other.entries.items():
            if not own_cc.contains(dot):
                continue
            mine = self.entries.get(dot)
            if mine is None or not mine.leq(value):
                return False
        return True

    def size_units(self) -> int:
        return sum(max(1, value.size_units()) for value in self.entries.values())

    def size_bytes(self, model: "SizeModel") -> int:
        return sum(
            model.vector_entry_bytes() + value.size_bytes(model)
            for value in self.entries.values()
        )

    def get(self, dot: Dot) -> Lattice | None:
        return self.entries.get(dot)

    def values(self) -> Iterator[Lattice]:
        return iter(self.entries.values())

    def items(self) -> Iterator[Tuple[Dot, Lattice]]:
        return iter(self.entries.items())

    def __len__(self) -> int:
        return len(self.entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DotFun) and self.entries == other.entries

    def __hash__(self) -> int:
        return hash((DotFun, frozenset(self.entries.items())))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{d.replica!r}.{d.counter}: {v!r}"
            for d, v in sorted(self.entries.items(), key=lambda kv: (repr(kv[0].replica), kv[0].counter))
        )
        return f"DotFun({{{inner}}})"


class DotMap(DotStore):
    """A map from keys to nested dot stores — OR-sets and OR-maps.

    Keys whose nested store is empty are not represented (the causal
    context remembers their dots), so a key is "in the map" exactly
    when it holds at least one live dot — the add-wins read.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Mapping[Hashable, DotStore] | None = None) -> None:
        cleaned: Dict[Hashable, DotStore] = {
            key: sub for key, sub in (entries or {}).items() if not sub.is_empty
        }
        object.__setattr__(self, "entries", cleaned)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def dots(self) -> FrozenSet[Dot]:
        out: set[Dot] = set()
        for sub in self.entries.values():
            out |= sub.dots()
        return frozenset(out)

    @property
    def is_empty(self) -> bool:
        return not self.entries

    def bottom_like(self) -> "DotMap":
        return _EMPTY_DOTMAP

    def join(
        self, other: "DotMap", own_cc: CausalContext, other_cc: CausalContext
    ) -> "DotMap":
        merged: Dict[Hashable, DotStore] = {}
        for key, sub in self.entries.items():
            theirs = other.entries.get(key)
            joined = sub.join(
                theirs if theirs is not None else sub.bottom_like(), own_cc, other_cc
            )
            if not joined.is_empty:
                merged[key] = joined
        for key, sub in other.entries.items():
            if key in self.entries:
                continue
            joined = sub.bottom_like().join(sub, own_cc, other_cc)
            if not joined.is_empty:
                merged[key] = joined
        return DotMap(merged)

    def irreducibles(self) -> Iterator[Tuple["DotMap", Dot]]:
        for key, sub in self.entries.items():
            for fragment, dot in sub.irreducibles():
                yield DotMap({key: fragment}), dot

    def delta_live(self, other: "DotMap", other_cc: CausalContext) -> "DotMap":
        out: Dict[Hashable, DotStore] = {}
        for key, sub in self.entries.items():
            theirs = other.entries.get(key)
            fragment = sub.delta_live(
                theirs if theirs is not None else sub.bottom_like(), other_cc
            )
            if not fragment.is_empty:
                out[key] = fragment
        return DotMap(out)

    def leq_live(self, other: "DotStore", own_cc: CausalContext) -> bool:
        assert isinstance(other, DotMap)
        for key, sub in other.entries.items():
            mine = self.entries.get(key)
            if mine is None:
                mine = sub.bottom_like()
            if not mine.leq_live(sub, own_cc):
                return False
        return True

    def size_units(self) -> int:
        return sum(sub.size_units() for sub in self.entries.values())

    def size_bytes(self, model: "SizeModel") -> int:
        return sum(
            model.sizeof(key) + sub.size_bytes(model)
            for key, sub in self.entries.items()
        )

    def get(self, key: Hashable) -> DotStore | None:
        return self.entries.get(key)

    def keys(self) -> Iterator[Hashable]:
        return iter(self.entries.keys())

    def items(self) -> Iterator[Tuple[Hashable, DotStore]]:
        return iter(self.entries.items())

    def __contains__(self, key: Hashable) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DotMap) and self.entries == other.entries

    def __hash__(self) -> int:
        return hash((DotMap, frozenset(self.entries.items())))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{key!r}: {sub!r}"
            for key, sub in sorted(self.entries.items(), key=lambda kv: repr(kv[0]))
        )
        return f"DotMap({{{inner}}})"


_EMPTY_DOTSET = DotSet()
_EMPTY_DOTFUN = DotFun()
_EMPTY_DOTMAP = DotMap()
