"""Causal multi-value register: ``DotFun⟨Atom⟩``.

A register whose concurrent writes are all retained; a read returns the
set of values written by the maximal (mutually concurrent) writes, and
a new write covers every value the writer has observed.  This is the
register semantics of Riak and of the original Shapiro et al. MVRegister,
expressed in the causal framework so it composes with every
synchronizer in the library and decomposes into optimal deltas (one
dot-value pair per write, plus the covered dots as context).

The sibling :mod:`repro.crdt.mvregister` implements the same data type
with version-vector antichains; this one demonstrates the dot-store
construction and is the one to nest inside OR-maps.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable

from repro.causal.atom import Atom
from repro.causal.causal import Causal
from repro.causal.dots import CausalContext
from repro.causal.stores import DotFun
from repro.crdt.base import Crdt


class CausalMVRegister(Crdt):
    """A multi-value register with optimal write deltas.

    >>> a, b = CausalMVRegister("A"), CausalMVRegister("B")
    >>> _ = a.write(1)
    >>> _ = b.write(2)                     # concurrent with a's write
    >>> a.merge(b)
    >>> sorted(a.values)
    [1, 2]
    >>> _ = a.write(3)                     # observes both, covers both
    >>> b.merge(a)
    >>> sorted(b.values)
    [3]
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: Causal | None = None) -> None:
        super().__init__(replica, state if state is not None else Causal.fun_bottom())

    @staticmethod
    def bottom() -> Causal:
        """The unwritten register."""
        return Causal.fun_bottom()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def write(self, value: Hashable) -> Causal:
        """Write ``value``, superseding every observed value."""
        delta = self.write_delta(self.state, value)
        return self.apply_delta(delta)

    def write_delta(self, state: Causal, value: Hashable) -> Causal:
        """δ-mutator: one fresh dot-value pair covering the observed dots."""
        dot = state.context.next_dot(self.replica)
        covered = set(state.store.dots())
        covered.add(dot)
        return Causal(DotFun({dot: Atom(value)}), CausalContext.from_dots(covered))

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def values(self) -> FrozenSet[Hashable]:
        """The surviving concurrently-written values (empty if unwritten)."""
        return frozenset(atom.value for atom in self.state.store.values())
