"""Add-wins observed-remove set: ``DotMap⟨E, DotSet⟩``.

The workhorse causal CRDT: a set supporting both additions and
removals, where a removal only affects the additions it has *observed*
— a concurrent add survives (add wins).  Each element maps to the set
of dots of its surviving add events; removing an element drops its dots
from the store while the causal context keeps remembering them.

Every mutator returns the optimal delta of Section III-B: an add ships
one fresh dot (plus the covered dots as context); a remove ships no
payload at all, only the removed dots in the context — which is what
makes delta-based synchronization of OR-sets so much cheaper than
shipping tombstoned full states.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterator, Set

from repro.causal.causal import Causal
from repro.causal.dots import CausalContext
from repro.causal.stores import DotMap, DotSet
from repro.crdt.base import Crdt


class AWSet(Crdt):
    """An add-wins set with optimal add/remove deltas.

    >>> a, b = AWSet("A"), AWSet("B")
    >>> _ = a.add("milk")
    >>> b.merge(a)
    >>> _ = b.remove("milk")
    >>> _ = a.add("milk")                  # concurrent re-add
    >>> a.merge(b); b.merge(a)
    >>> a.contains("milk") and b.contains("milk")
    True
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: Causal | None = None) -> None:
        super().__init__(replica, state if state is not None else Causal.map_bottom())

    @staticmethod
    def bottom() -> Causal:
        """The empty set all replicas start from."""
        return Causal.map_bottom()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def add(self, element: Hashable) -> Causal:
        """Add ``element``; returns the optimal delta."""
        delta = self.add_delta(self.state, element)
        return self.apply_delta(delta)

    def remove(self, element: Hashable) -> Causal:
        """Remove the observed instances of ``element``; optimal delta."""
        delta = self.remove_delta(self.state, element)
        return self.apply_delta(delta)

    def clear(self) -> Causal:
        """Remove every observed element; returns the optimal delta."""
        delta = self.clear_delta(self.state)
        return self.apply_delta(delta)

    def add_delta(self, state: Causal, element: Hashable) -> Causal:
        """δ-mutator: one fresh dot for ``element``, covering its old dots.

        Covering the element's observed dots lets the join retire them,
        so long-lived elements do not accumulate one dot per re-add.
        """
        dot = state.context.next_dot(self.replica)
        existing = state.store.get(element)
        covered: Set = set(existing.dots()) if existing is not None else set()
        covered.add(dot)
        return Causal(
            DotMap({element: DotSet((dot,))}), CausalContext.from_dots(covered)
        )

    def remove_delta(self, state: Causal, element: Hashable) -> Causal:
        """δ-mutator: no payload, just the element's observed dots.

        Removing an element that is not present is a no-op (``⊥``),
        mirroring the paper's optimal GSet ``addδ`` that returns bottom
        for a duplicate add.
        """
        existing = state.store.get(element)
        if existing is None:
            return state.bottom_like()
        return Causal(DotMap(), CausalContext.from_dots(existing.dots()))

    def clear_delta(self, state: Causal) -> Causal:
        """δ-mutator: cover every live dot, shipping no payload."""
        dots = state.store.dots()
        if not dots:
            return state.bottom_like()
        return Causal(DotMap(), CausalContext.from_dots(dots))

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def contains(self, element: Hashable) -> bool:
        """True while ``element`` holds at least one surviving add dot."""
        return element in self.state.store

    @property
    def value(self) -> FrozenSet[Hashable]:
        """The current set of elements."""
        return frozenset(self.state.store.keys())

    def __contains__(self, element: Hashable) -> bool:
        return self.contains(element)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.state.store.keys())

    def __len__(self) -> int:
        return len(self.state.store)
