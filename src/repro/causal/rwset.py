"""Remove-wins observed-remove set: ``DotMap⟨E × {add, rmv}, DotSet⟩``.

The policy dual of :class:`~repro.causal.awset.AWSet`: under a
concurrent add and remove of the same element, the remove prevails.
Each element keeps *two* dot sets — one for surviving add assertions
and one for surviving remove assertions — and membership requires an
add assertion with no standing remove assertion.  Asserting either side
covers the observed dots of **both** sides, which is what gives the
fresher concurrent assertion its victory.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterator, Set

from repro.causal.causal import Causal
from repro.causal.dots import CausalContext
from repro.causal.stores import DotMap, DotSet
from repro.crdt.base import Crdt

#: Tags distinguishing the two assertion sides of an element.
_ADD = True
_RMV = False


class RWSet(Crdt):
    """A remove-wins set with optimal assertion deltas.

    >>> a, b = RWSet("A"), RWSet("B")
    >>> _ = a.add("milk")
    >>> b.merge(a)
    >>> _ = b.remove("milk")
    >>> _ = a.add("milk")                  # concurrent re-add
    >>> a.merge(b); b.merge(a)
    >>> a.contains("milk") or b.contains("milk")   # remove wins
    False
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: Causal | None = None) -> None:
        super().__init__(replica, state if state is not None else Causal.map_bottom())

    @staticmethod
    def bottom() -> Causal:
        """The empty set all replicas start from."""
        return Causal.map_bottom()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def add(self, element: Hashable) -> Causal:
        """Assert membership of ``element``; returns the optimal delta."""
        delta = self._assert_delta(self.state, element, _ADD)
        return self.apply_delta(delta)

    def remove(self, element: Hashable) -> Causal:
        """Assert removal of ``element``; returns the optimal delta."""
        delta = self._assert_delta(self.state, element, _RMV)
        return self.apply_delta(delta)

    def add_delta(self, state: Causal, element: Hashable) -> Causal:
        """δ-mutator for :meth:`add` against an explicit state."""
        return self._assert_delta(state, element, _ADD)

    def remove_delta(self, state: Causal, element: Hashable) -> Causal:
        """δ-mutator for :meth:`remove` against an explicit state."""
        return self._assert_delta(state, element, _RMV)

    def _assert_delta(self, state: Causal, element: Hashable, side: bool) -> Causal:
        """One fresh dot on ``side``, covering both sides' observed dots."""
        dot = state.context.next_dot(self.replica)
        covered: Set = {dot}
        for tag in (_ADD, _RMV):
            existing = state.store.get((element, tag))
            if existing is not None:
                covered |= existing.dots()
        return Causal(
            DotMap({(element, side): DotSet((dot,))}),
            CausalContext.from_dots(covered),
        )

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def contains(self, element: Hashable) -> bool:
        """Membership: a surviving add assertion and no remove assertion."""
        return (element, _ADD) in self.state.store and (
            element,
            _RMV,
        ) not in self.state.store

    @property
    def value(self) -> FrozenSet[Hashable]:
        """The current set of elements."""
        return frozenset(
            element
            for (element, tag) in self.state.store.keys()
            if tag == _ADD and (element, _RMV) not in self.state.store
        )

    def __contains__(self, element: Hashable) -> bool:
        return self.contains(element)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.value)

    def __len__(self) -> int:
        return len(self.value)
