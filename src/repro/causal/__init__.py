"""Causal (observed-remove) delta-CRDTs over dot stores.

This package extends the paper's join-decomposition machinery to the
causal CRDT family of the delta-CRDT lineage (Almeida et al., JPDC
2018) — the "more complex" data types the paper's Appendix B argues its
results cover.  States pair a dot store with a causal context
(:class:`Causal`), which implements the full lattice protocol: joins,
the partial order, unique irredundant join decompositions, and optimal
deltas — so removals, flags, and registers synchronize through every
protocol in :mod:`repro.sync` with no special-casing.

Data types:

=====================  ==========================  =======================
Type                   Store                       Conflict policy
=====================  ==========================  =======================
:class:`EWFlag`        ``DotSet``                  enable wins
:class:`DWFlag`        ``DotSet``                  disable wins
:class:`AWSet`         ``DotMap⟨E, DotSet⟩``       add wins
:class:`RWSet`         ``DotMap⟨E×2, DotSet⟩``     remove wins
:class:`CausalMVRegister`  ``DotFun⟨Atom⟩``        all concurrent writes
:class:`CCounter`      ``DotFun⟨MaxInt⟩``          reset zeroes observed
:class:`ORMap`         ``DotMap⟨K, store⟩``        update wins vs remove
=====================  ==========================  =======================
"""

from repro.causal.atom import Atom
from repro.causal.awset import AWSet
from repro.causal.causal import Causal
from repro.causal.ccounter import CCounter
from repro.causal.dots import CausalContext, Dot, EMPTY_CONTEXT
from repro.causal.flags import DWFlag, EWFlag
from repro.causal.mvregister import CausalMVRegister
from repro.causal.ormap import ORMap
from repro.causal.rwset import RWSet
from repro.causal.stores import DotFun, DotMap, DotSet, DotStore

__all__ = [
    "Atom",
    "AWSet",
    "Causal",
    "CausalContext",
    "CausalMVRegister",
    "CCounter",
    "Dot",
    "DotFun",
    "DotMap",
    "DotSet",
    "DotStore",
    "DWFlag",
    "EMPTY_CONTEXT",
    "EWFlag",
    "ORMap",
    "RWSet",
]
