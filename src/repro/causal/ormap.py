"""Observed-remove map: ``DotMap⟨K, V⟩`` over nested causal values.

A map whose values are themselves causal CRDTs (flags, registers,
AW-sets, or further maps), with observed-remove semantics on whole
keys: removing a key erases the value state the remover has seen, while
updates concurrent with the removal survive under fresh dots — the
same add-wins resolution as :class:`~repro.causal.awset.AWSet`, lifted
to arbitrary value types.

All nested values share the single top-level causal context, which is
what keeps an OR-map cheap: one context per map, not one per key.  A
key update is expressed as a δ-mutator on the *value view* ``(value
store, map context)``; the resulting value delta is wrapped back under
the key with the same delta context.

>>> from repro.causal.mvregister import CausalMVRegister
>>> carts = ORMap("A", value_bottom=Causal.fun_bottom())
>>> reg = CausalMVRegister("A")
>>> _ = carts.update("alice", lambda view: reg.write_delta(view, "3 apples"))
>>> sorted(carts.value_view("alice").store.values(), key=repr)[0].value
'3 apples'
>>> _ = carts.remove("alice")
>>> "alice" in carts.keys()
False
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Hashable, Iterator

from repro.causal.causal import Causal
from repro.causal.dots import CausalContext
from repro.causal.stores import DotMap
from repro.crdt.base import Crdt

#: A δ-mutator over a value view ``(value store, map context)``.
ValueMutator = Callable[[Causal], Causal]


class ORMap(Crdt):
    """A map from keys to nested causal CRDT values.

    Args:
        replica: The local replica identifier.
        value_bottom: A bottom causal value fixing the store shape of
            the map's values (e.g. ``Causal.map_bottom()`` for AW-set
            values, ``Causal.fun_bottom()`` for register values); used
            to build the value view of a key that is not present yet.
        state: Optional starting state (defaults to the empty map).
    """

    __slots__ = ("value_bottom",)

    def __init__(
        self,
        replica: Hashable,
        value_bottom: Causal,
        state: Causal | None = None,
    ) -> None:
        super().__init__(replica, state if state is not None else Causal.map_bottom())
        self.value_bottom = value_bottom

    @staticmethod
    def bottom() -> Causal:
        """The empty map all replicas start from."""
        return Causal.map_bottom()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def update(self, key: Hashable, mutate: ValueMutator) -> Causal:
        """Apply a value δ-mutator under ``key``; returns the map delta."""
        delta = self.update_delta(self.state, key, mutate)
        return self.apply_delta(delta)

    def remove(self, key: Hashable) -> Causal:
        """Erase the observed value under ``key``; returns the map delta."""
        delta = self.remove_delta(self.state, key)
        return self.apply_delta(delta)

    def update_delta(
        self, state: Causal, key: Hashable, mutate: ValueMutator
    ) -> Causal:
        """δ-mutator: run ``mutate`` on the key's value view and re-wrap.

        The view pairs the key's current value store (bottom when the
        key is absent) with the **map's** context, so fresh dots drawn
        by the value mutator never collide with dots used elsewhere in
        the map.
        """
        sub = state.store.get(key)
        if sub is None:
            sub = self.value_bottom.store
        view = Causal(sub, state.context)
        value_delta = mutate(view)
        if value_delta.is_bottom:
            return state.bottom_like()
        return Causal(DotMap({key: value_delta.store}), value_delta.context)

    def remove_delta(self, state: Causal, key: Hashable) -> Causal:
        """δ-mutator: cover the key's observed dots, shipping no payload."""
        sub = state.store.get(key)
        if sub is None:
            return state.bottom_like()
        return Causal(DotMap(), CausalContext.from_dots(sub.dots()))

    def clear_delta(self, state: Causal) -> Causal:
        """δ-mutator: cover every key's observed dots."""
        dots = state.store.dots()
        if not dots:
            return state.bottom_like()
        return Causal(DotMap(), CausalContext.from_dots(dots))

    def clear(self) -> Causal:
        """Erase every observed key; returns the map delta."""
        delta = self.clear_delta(self.state)
        return self.apply_delta(delta)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def keys(self) -> FrozenSet[Hashable]:
        """Keys currently holding at least one live dot."""
        return frozenset(self.state.store.keys())

    def value_view(self, key: Hashable) -> Causal:
        """The value under ``key`` as a causal state sharing the map context.

        Queries on the nested CRDT type read from this view; for an
        absent key the view is the configured value bottom paired with
        the map's context.
        """
        sub = self.state.store.get(key)
        if sub is None:
            sub = self.value_bottom.store
        return Causal(sub, self.state.context)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.state.store

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.state.store.keys())

    def __len__(self) -> int:
        return len(self.state.store)
