"""The causal lattice: (dot store, causal context) pairs as CRDT states.

:class:`Causal` packages a dot store with its causal context and
implements the full :class:`~repro.lattice.base.Lattice` protocol, so
every synchronizer in :mod:`repro.sync` — state-based, all four
delta-based variants, Scuttlebutt, op-based — replicates causal CRDTs
unchanged.  This realizes the paper's Appendix B claim that join
decompositions extend beyond the grow-only examples to the CRDTs used
in practice.

Per dot, the reachable states form a chain::

    ⊥  <  live (payload climbs the value lattice)  <  seen-and-removed

so the causal lattice is a product of lifted chains: distributive and
DCC, hence (Proposition 1) every state has a unique irredundant join
decomposition.  Concretely, ``⇓(s, c)`` consists of

* one **live fragment** ``(f, {d})`` per irreducible payload ``f`` of
  each live dot ``d`` — what an add/write contributes, and
* one **tombstone** ``(⊥, {d})`` per dot in ``c`` absent from ``s`` —
  what a remove contributes.

The optimal delta follows Section III-B but deserves its subtlety
spelled out: a tombstone ``(⊥, {d})`` is redundant against ``b`` only
when ``b`` has seen **and removed** ``d``.  If ``b`` still holds ``d``
live, the tombstone strictly inflates ``b`` (it kills the dot) and must
be part of ``∆(a, b)`` — dropping it would resurrect removed elements
during anti-entropy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Set

from repro.causal.dots import CausalContext, Dot, EMPTY_CONTEXT
from repro.causal.stores import DotFun, DotMap, DotSet, DotStore
from repro.lattice.base import Lattice

if TYPE_CHECKING:  # pragma: no cover
    from repro.sizes import SizeModel


class Causal(Lattice):
    """An immutable causal CRDT state ``(store, context)``.

    >>> write = Causal(DotSet([Dot("A", 1)]), CausalContext.from_dots([Dot("A", 1)]))
    >>> erase = Causal(DotSet(), write.context)      # saw the dot, dropped it
    >>> write.join(erase).store.is_empty             # the removal wins
    True
    """

    __slots__ = ("store", "context")

    def __init__(self, store: DotStore, context: CausalContext) -> None:
        object.__setattr__(self, "store", store)
        object.__setattr__(self, "context", context)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    # ------------------------------------------------------------------
    # Bottom constructors, one per store shape.
    # ------------------------------------------------------------------

    @staticmethod
    def set_bottom() -> "Causal":
        """Bottom over a :class:`DotSet` store (flags)."""
        return _SET_BOTTOM

    @staticmethod
    def fun_bottom() -> "Causal":
        """Bottom over a :class:`DotFun` store (registers, counters)."""
        return _FUN_BOTTOM

    @staticmethod
    def map_bottom() -> "Causal":
        """Bottom over a :class:`DotMap` store (OR-sets, OR-maps)."""
        return _MAP_BOTTOM

    # ------------------------------------------------------------------
    # Lattice protocol.
    # ------------------------------------------------------------------

    def join(self, other: "Causal") -> "Causal":
        store = self.store.join(other.store, self.context, other.context)
        return Causal(store, self.context.union(other.context))

    def leq(self, other: "Causal") -> bool:
        # Context containment plus the live-side conditions; see the
        # stores' ``leq_live`` for the per-shape derivation.
        return self.context.leq(other.context) and self.store.leq_live(
            other.store, self.context
        )

    def bottom_like(self) -> "Causal":
        if self.store.is_empty and self.context.is_empty:
            return self
        return Causal(self.store.bottom_like(), EMPTY_CONTEXT)

    @property
    def is_bottom(self) -> bool:
        return self.store.is_empty and self.context.is_empty

    def decompose(self) -> Iterator["Causal"]:
        empty_store = self.store.bottom_like()
        live: Set[Dot] = self.store.dots()
        for fragment, dot in self.store.irreducibles():
            yield Causal(fragment, CausalContext.from_dots((dot,)))
        for dot in self.context.dots():
            if dot not in live:
                yield Causal(empty_store, CausalContext.from_dots((dot,)))

    def delta(self, other: "Causal") -> "Causal":
        """Optimal ``∆(self, other)`` without materializing ``⇓self``.

        Live fragments come from the store's ``delta_live``; tombstones
        are the removed dots of ``self`` that ``other`` either never saw
        or still holds live (see the module docstring).
        """
        live = self.store.delta_live(other.store, other.context)
        own_live = self.store.dots()
        carried: Set[Dot] = set(live.dots())
        for dot in self.context.subtract(other.context):
            if dot not in own_live:
                carried.add(dot)
        for dot in other.store.dots():
            if dot not in own_live and self.context.contains(dot):
                carried.add(dot)
        if live.is_empty and not carried:
            return self.bottom_like()
        return Causal(live, CausalContext.from_dots(carried))

    # ------------------------------------------------------------------
    # Size accounting.
    # ------------------------------------------------------------------

    def size_units(self) -> int:
        """Store entries plus context entries (both cross the wire)."""
        return self.store.size_units() + self.context.size_units()

    def size_bytes(self, model: "SizeModel") -> int:
        return self.store.size_bytes(model) + self.context.size_bytes(model)

    # ------------------------------------------------------------------
    # Diagnostics.
    # ------------------------------------------------------------------

    def check_invariant(self) -> None:
        """Assert the store's dots are all covered by the context.

        Every state reachable through mutators and joins maintains
        this; tests call it after random operation interleavings.
        """
        for dot in self.store.dots():
            if not self.context.contains(dot):
                raise AssertionError(f"store dot {dot} missing from context")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Causal)
            and self.store == other.store
            and self.context == other.context
        )

    def __hash__(self) -> int:
        return hash((Causal, self.store, self.context))

    def __repr__(self) -> str:
        return f"Causal({self.store!r}, {self.context!r})"


_SET_BOTTOM = Causal(DotSet(), EMPTY_CONTEXT)
_FUN_BOTTOM = Causal(DotFun(), EMPTY_CONTEXT)
_MAP_BOTTOM = Causal(DotMap(), EMPTY_CONTEXT)
