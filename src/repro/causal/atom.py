"""Opaque payloads as (degenerate) lattice values for dot-function stores.

Multi-value registers store arbitrary application values — tweet
bodies, JSON blobs — that have no lattice structure of their own.  In a
:class:`~repro.causal.stores.DotFun` each value lives under the unique
dot of the write event that produced it, and two replicas can only ever
associate *the same* value with a given dot.  :class:`Atom` leans on
that invariant: it is a flat one-point-per-value "lattice" whose join
is defined only between equal values (and bottom).

This is standard practice in CRDT implementations (Riak, Akka
Distributed Data treat register payloads as opaque blobs).  ``Atom`` is
deliberately *not* a lawful lattice over its whole carrier — joining
two distinct atoms raises — so it must only be used in positions where
the per-dot single-writer invariant holds, which every type in
:mod:`repro.causal` guarantees by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterator

from repro.lattice.base import Lattice

if TYPE_CHECKING:  # pragma: no cover
    from repro.sizes import SizeModel


class _BottomType:
    """Unique sentinel distinguishing "no value" from a ``None`` payload."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<atom-bottom>"


_BOTTOM = _BottomType()


class Atom(Lattice):
    """An opaque payload wrapped as a lattice value.

    >>> Atom("x").join(Atom("x"))
    Atom('x')
    >>> Atom().is_bottom
    True
    >>> Atom("x").join(Atom("y"))
    Traceback (most recent call last):
        ...
    ValueError: cannot join distinct atoms 'x' and 'y'
    """

    __slots__ = ("value",)

    def __init__(self, value: Hashable = _BOTTOM) -> None:
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def join(self, other: "Atom") -> "Atom":
        if self.is_bottom:
            return other
        if other.is_bottom or self.value == other.value:
            return self
        raise ValueError(
            f"cannot join distinct atoms {self.value!r} and {other.value!r}"
        )

    def leq(self, other: "Atom") -> bool:
        return self.is_bottom or self.value == other.value

    def bottom_like(self) -> "Atom":
        return _ATOM_BOTTOM

    @property
    def is_bottom(self) -> bool:
        return self.value is _BOTTOM

    def decompose(self) -> Iterator["Atom"]:
        if not self.is_bottom:
            yield self

    def delta(self, other: "Atom") -> "Atom":
        return _ATOM_BOTTOM if self.leq(other) else self

    def size_units(self) -> int:
        return 0 if self.is_bottom else 1

    def size_bytes(self, model: "SizeModel") -> int:
        return 0 if self.is_bottom else model.sizeof(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Atom) and self.value == other.value

    def __hash__(self) -> int:
        return hash((Atom, self.value))

    def __repr__(self) -> str:
        return "Atom()" if self.is_bottom else f"Atom({self.value!r})"


_ATOM_BOTTOM = Atom()
