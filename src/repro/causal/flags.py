"""Enable-wins and disable-wins flags over a :class:`DotSet` store.

The simplest causal CRDTs: a boolean whose conflicting concurrent
writes are resolved by policy.  The store holds the dots of the
"winning-side" events still in force:

* **EWFlag** — the store holds *enable* dots; the flag reads enabled
  when any survive.  An enable writes a fresh dot and covers the old
  ones; a disable covers them all.  A concurrent enable's dot is
  unknown to the disabler's context, so it survives the join: enable
  wins.
* **DWFlag** — the mirror image; the store holds *disable* dots and the
  flag reads enabled when none survive, so the flag starts enabled and
  concurrent disable wins.

Both mutators return the optimal delta: exactly one fresh dot (or
none), plus the covered dots in the delta's causal context.
"""

from __future__ import annotations

from typing import Hashable

from repro.causal.causal import Causal
from repro.causal.dots import CausalContext
from repro.causal.stores import DotSet
from repro.crdt.base import Crdt


class EWFlag(Crdt):
    """An enable-wins boolean flag; starts disabled.

    >>> a, b = EWFlag("A"), EWFlag("B")
    >>> _ = a.enable()
    >>> b.merge(a); _ = b.disable()
    >>> _ = a.enable()                     # concurrent with b's disable
    >>> a.merge(b); b.merge(a)
    >>> a.enabled and b.enabled            # enable wins
    True
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: Causal | None = None) -> None:
        super().__init__(replica, state if state is not None else Causal.set_bottom())

    @staticmethod
    def bottom() -> Causal:
        """The initial (disabled) state."""
        return Causal.set_bottom()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def enable(self) -> Causal:
        """Set the flag; returns the optimal delta."""
        delta = self.enable_delta(self.state)
        return self.apply_delta(delta)

    def disable(self) -> Causal:
        """Clear the flag; returns the optimal delta."""
        delta = self.disable_delta(self.state)
        return self.apply_delta(delta)

    def enable_delta(self, state: Causal) -> Causal:
        """δ-mutator: one fresh dot, covering the observed enable dots."""
        dot = state.context.next_dot(self.replica)
        covered = set(state.store.dots())
        covered.add(dot)
        return Causal(DotSet((dot,)), CausalContext.from_dots(covered))

    def disable_delta(self, state: Causal) -> Causal:
        """δ-mutator: cover the observed enable dots (⊥ if already clear)."""
        observed = state.store.dots()
        if not observed:
            return state.bottom_like()
        return Causal(DotSet(), CausalContext.from_dots(observed))

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True while at least one enable dot survives."""
        return not self.state.store.is_empty


class DWFlag(Crdt):
    """A disable-wins boolean flag; starts enabled.

    >>> a, b = DWFlag("A"), DWFlag("B")
    >>> _ = a.disable()
    >>> b.merge(a); _ = b.enable()
    >>> _ = a.disable()                    # concurrent with b's enable
    >>> a.merge(b); b.merge(a)
    >>> a.enabled or b.enabled             # disable wins
    False
    """

    __slots__ = ()

    def __init__(self, replica: Hashable, state: Causal | None = None) -> None:
        super().__init__(replica, state if state is not None else Causal.set_bottom())

    @staticmethod
    def bottom() -> Causal:
        """The initial (enabled) state."""
        return Causal.set_bottom()

    # ------------------------------------------------------------------
    # Mutators.
    # ------------------------------------------------------------------

    def disable(self) -> Causal:
        """Clear the flag; returns the optimal delta."""
        delta = self.disable_delta(self.state)
        return self.apply_delta(delta)

    def enable(self) -> Causal:
        """Set the flag; returns the optimal delta."""
        delta = self.enable_delta(self.state)
        return self.apply_delta(delta)

    def disable_delta(self, state: Causal) -> Causal:
        """δ-mutator: one fresh disable dot, covering the observed ones."""
        dot = state.context.next_dot(self.replica)
        covered = set(state.store.dots())
        covered.add(dot)
        return Causal(DotSet((dot,)), CausalContext.from_dots(covered))

    def enable_delta(self, state: Causal) -> Causal:
        """δ-mutator: cover the observed disable dots (⊥ if none)."""
        observed = state.store.dots()
        if not observed:
            return state.bottom_like()
        return Causal(DotSet(), CausalContext.from_dots(observed))

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True while no disable dot survives."""
        return self.state.store.is_empty
