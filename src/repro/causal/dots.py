"""Dots and causal contexts — the bookkeeping behind causal CRDTs.

The paper's Appendix B notes that its decomposition results "can be
obtained for almost all state-based CRDTs used in practice".  The most
important practical family beyond the grow-only types are the *causal*
(observed-remove) CRDTs of the delta-CRDT lineage the paper builds on
(Almeida et al., *Delta State Replicated Data Types*, JPDC 2018):
add-wins sets, enable/disable-wins flags, multi-value registers, and
observed-remove maps.  Their states pair a *dot store* with a *causal
context*:

* a **dot** ``(i, n)`` uniquely names the *n*-th update event performed
  by replica ``i``;
* a **causal context** is the set of dots a replica has observed.

Removal works without tombstoning payloads: an element's dots are
dropped from the store while the context keeps remembering them, so a
join can distinguish "you have not seen this add yet" (dot missing from
the context — keep it) from "you deleted it" (dot in the context but
not the store — drop it).

Contexts are stored compactly as a version vector (the per-replica
contiguous prefix ``1..n``) plus a *dot cloud* of out-of-order dots;
the constructor normalizes by absorbing cloud dots contiguous with the
vector, which keeps equality and hashing canonical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Iterable, Iterator, Mapping, NamedTuple, Set

if TYPE_CHECKING:  # pragma: no cover
    from repro.sizes import SizeModel


class Dot(NamedTuple):
    """A globally unique event identifier: replica id and local counter.

    Counters start at 1; replica ``i``'s k-th update carries ``Dot(i, k)``.

    >>> Dot("A", 1) < Dot("A", 2)
    True
    """

    replica: Hashable
    counter: int


class CausalContext:
    """An immutable, compactly-represented set of observed dots.

    The context is the pair of a version vector ``compact`` (replica →
    highest ``n`` such that all of ``1..n`` was observed) and a
    ``cloud`` of isolated dots above the vector.  All operations return
    new contexts; normalization keeps the representation canonical so
    value equality is structural equality.

    >>> cc = CausalContext.from_dots([Dot("A", 1), Dot("A", 2), Dot("B", 2)])
    >>> cc.contains(Dot("A", 2)), cc.contains(Dot("B", 1))
    (True, False)
    """

    __slots__ = ("compact", "cloud", "_hash")

    def __init__(
        self,
        compact: Mapping[Hashable, int] | None = None,
        cloud: Iterable[Dot] = (),
    ) -> None:
        vector: Dict[Hashable, int] = {
            replica: top for replica, top in (compact or {}).items() if top > 0
        }
        pending: Set[Dot] = set(cloud)
        # Absorb cloud dots contiguous with the vector so the compact
        # part is the maximal contiguous prefix (canonical form).
        changed = True
        while changed and pending:
            changed = False
            for dot in sorted(pending):
                if dot.counter == vector.get(dot.replica, 0) + 1:
                    vector[dot.replica] = dot.counter
                    pending.discard(dot)
                    changed = True
                elif dot.counter <= vector.get(dot.replica, 0):
                    pending.discard(dot)
                    changed = True
        object.__setattr__(self, "compact", vector)
        object.__setattr__(self, "cloud", frozenset(pending))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    @staticmethod
    def from_dots(dots: Iterable[Dot]) -> "CausalContext":
        """Context containing exactly ``dots``."""
        return CausalContext(cloud=dots)

    def union(self, other: "CausalContext") -> "CausalContext":
        """Set union of the observed dots (the lattice join of contexts)."""
        if other.is_empty:
            return self
        if self.is_empty:
            return other
        merged = dict(self.compact)
        for replica, top in other.compact.items():
            if top > merged.get(replica, 0):
                merged[replica] = top
        return CausalContext(merged, self.cloud | other.cloud)

    def add(self, dot: Dot) -> "CausalContext":
        """Return a context additionally containing ``dot``."""
        if self.contains(dot):
            return self
        return CausalContext(self.compact, self.cloud | {dot})

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def contains(self, dot: Dot) -> bool:
        """True if ``dot`` was observed."""
        return dot.counter <= self.compact.get(dot.replica, 0) or dot in self.cloud

    def max_counter(self, replica: Hashable) -> int:
        """The highest counter observed for ``replica`` (0 if none)."""
        top = self.compact.get(replica, 0)
        for dot in self.cloud:
            if dot.replica == replica and dot.counter > top:
                top = dot.counter
        return top

    def next_dot(self, replica: Hashable) -> Dot:
        """A fresh dot for ``replica``'s next local update event."""
        return Dot(replica, self.max_counter(replica) + 1)

    @property
    def is_empty(self) -> bool:
        return not self.compact and not self.cloud

    def dot_count(self) -> int:
        """The number of observed dots (compact prefix plus cloud)."""
        return sum(self.compact.values()) + len(self.cloud)

    def dots(self) -> Iterator[Dot]:
        """Every observed dot; O(dot_count), meant for small contexts."""
        for replica, top in self.compact.items():
            for counter in range(1, top + 1):
                yield Dot(replica, counter)
        yield from self.cloud

    def subtract(self, other: "CausalContext") -> Iterator[Dot]:
        """Dots in ``self`` but not in ``other``.

        Enumerates only the difference, never the full compact prefix,
        so it stays cheap when two replicas are nearly in sync — the
        common case in the paper's synchronization loops.
        """
        for replica, top in self.compact.items():
            start = other.compact.get(replica, 0) + 1
            for counter in range(start, top + 1):
                dot = Dot(replica, counter)
                if not other.contains(dot):
                    yield dot
        for dot in self.cloud:
            if not other.contains(dot):
                yield dot

    def leq(self, other: "CausalContext") -> bool:
        """Subset test: every dot of ``self`` is in ``other``.

        Because normalization keeps ``compact`` maximal, prefix coverage
        reduces to a per-replica counter comparison.
        """
        for replica, top in self.compact.items():
            if top > other.compact.get(replica, 0):
                return False
        return all(other.contains(dot) for dot in self.cloud)

    # ------------------------------------------------------------------
    # Size accounting (context entries travel with every causal delta).
    # ------------------------------------------------------------------

    def size_units(self) -> int:
        """Entries in the paper's unit metric: vector entries + cloud dots."""
        return len(self.compact) + len(self.cloud)

    def size_bytes(self, model: "SizeModel") -> int:
        """Bytes: each vector entry and cloud dot is an (id, counter) pair."""
        return (len(self.compact) + len(self.cloud)) * model.vector_entry_bytes()

    # ------------------------------------------------------------------
    # Value semantics.
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CausalContext)
            and self.compact == other.compact
            and self.cloud == other.cloud
        )

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((frozenset(self.compact.items()), self.cloud))
            # repro: lint-ok[frozen-mutation] sanctioned memo: the hash is a pure function of the frozen context
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        vector = ", ".join(
            f"{replica!r}:{top}" for replica, top in sorted(self.compact.items(), key=lambda kv: repr(kv[0]))
        )
        extras = ", ".join(f"{d.replica!r}.{d.counter}" for d in sorted(self.cloud, key=lambda d: (repr(d.replica), d.counter)))
        parts = [p for p in (f"{{{vector}}}" if vector else "", f"+{{{extras}}}" if extras else "") if p]
        return f"CausalContext({' '.join(parts) or '∅'})"


#: The empty context shared by every bottom causal state.
EMPTY_CONTEXT = CausalContext()
