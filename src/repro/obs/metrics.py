"""The metrics registry: named counters, gauges, and histograms.

Before this module, every layer kept its own ad-hoc counter dicts —
the anti-entropy scheduler's ``stats()``, the WAL's ``stats()``, the
cluster's retired-counter bookkeeping for rebuilt replicas — and the
experiment drivers stitched them together by key convention.  The
registry replaces that with one namespace per replica:

* instruments are **created once and found again**: asking for an
  existing name returns the same object, which is what lets a store
  rebuilt by ``crash(lose_state=True)`` re-bind to the counters its
  predecessor incremented instead of resetting them (the registry,
  like the WAL, deliberately outlives the store incarnation);
* ``snapshot()`` is **deterministic**: names are sorted, values are
  plain numbers, and registered *views* (read-through adapters over
  legacy counter dicts, e.g. the WAL's) are merged under their prefix —
  so two seeded runs produce byte-identical exports.

The instruments are deliberately minimal — this is measurement for a
deterministic reproduction, not a live telemetry pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time numeric value (goes up and down)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Summary statistics of observed values (count/sum/min/max).

    Full distributions live in the trace (every event carries its own
    measurements); the histogram keeps only the aggregates a snapshot
    export needs, so enabling metrics never grows memory with the run.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Number = 0
        self.max: Number = 0

    def observe(self, value: Number) -> None:
        if self.count == 0 or value < self.min:
            self.min = value
        if self.count == 0 or value > self.max:
            self.max = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """One replica's instrument namespace, surviving store rebuilds."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        #: prefix → zero-arg callable returning a counter dict; merged
        #: into snapshots read-through, so legacy ``stats()`` surfaces
        #: (the WAL's) appear in the registry without double-keeping.
        self._views: Dict[str, Callable[[], Mapping[str, Number]]] = {}

    def _get(self, name: str, kind: type):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get-or-create the named counter."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the named gauge."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the named histogram."""
        return self._get(name, Histogram)

    def register_view(
        self, prefix: str, provider: Callable[[], Mapping[str, Number]]
    ) -> None:
        """Merge ``provider()`` under ``prefix.`` at snapshot time.

        Re-registering a prefix replaces the provider — a rebuilt store
        re-binding its (surviving) WAL view is the expected case.
        """
        self._views[prefix] = provider

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Number]:
        """Every instrument and view as ``{name: value}``, sorted.

        Histograms export as ``name.count`` / ``name.sum`` /
        ``name.min`` / ``name.max`` so the result stays a flat mapping
        of plain numbers.
        """
        out: Dict[str, Number] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Histogram):
                out[f"{name}.count"] = instrument.count
                out[f"{name}.sum"] = instrument.total
                out[f"{name}.min"] = instrument.min
                out[f"{name}.max"] = instrument.max
            else:
                out[name] = instrument.value  # type: ignore[attr-defined]
        for prefix, provider in self._views.items():
            for key, value in provider().items():
                out[f"{prefix}.{key}"] = value
        return dict(sorted(out.items()))

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self._instruments)})"
