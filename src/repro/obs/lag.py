"""Convergence-lag probe: how long shards stay divergent, in rounds.

The paper's evaluation runs traffic, then drains to convergence and
reports totals.  A free-running runtime has no drain phase — its
quality metric is *lag*: when replicas of a shard disagree, how many
rounds pass before their root hashes agree again?  This probe samples
per-shard agreement after every round (the cluster computes agreement
cheaply from the digest roots it already knows how to build) and turns
the boolean stream into closed lag windows and a distribution.

A lag window opens at the first sampled round where a shard's owners
disagree and closes at the first subsequent round where they agree
again; the lag is the number of rounds the window spanned.  Windows
still open when sampling stops are reported separately — an unconverged
run should look unconverged, not drop its worst data points.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple


class ConvergenceProbe:
    """Tracks per-shard disagreement windows across sampled rounds."""

    def __init__(self) -> None:
        #: shard → round its open disagreement window started at.
        self._open: Dict[int, int] = {}
        #: closed windows as (shard, started_round, lag_rounds).
        self.closed: List[Tuple[int, int, int]] = []

    def observe(
        self, round: int, agreement: Mapping[int, bool]
    ) -> List[Tuple[int, int]]:
        """Fold in one round's per-shard agreement sample.

        Args:
            round: The round just completed.
            agreement: ``{shard: all_owners_agree}`` for every shard
                sampled this round.

        Returns:
            The windows that closed this round, as ``(shard, lag)`` —
            the caller emits one trace event per closed window.
        """
        newly_closed: List[Tuple[int, int]] = []
        for shard, agreed in agreement.items():
            started = self._open.get(shard)
            if agreed:
                if started is not None:
                    lag = round - started
                    del self._open[shard]
                    self.closed.append((shard, started, lag))
                    newly_closed.append((shard, lag))
            elif started is None:
                self._open[shard] = round
        return newly_closed

    def open_lags(self, round: int) -> Dict[int, int]:
        """Still-diverged shards and their lag so far at ``round``."""
        return {shard: round - started for shard, started in self._open.items()}

    def distribution(self) -> Dict[str, float]:
        """Count / mean / max / p50 / p95 over the closed lags."""
        lags = sorted(lag for _, _, lag in self.closed)
        if not lags:
            return {"count": 0, "mean": 0.0, "max": 0, "p50": 0, "p95": 0}
        return {
            "count": len(lags),
            "mean": sum(lags) / len(lags),
            "max": lags[-1],
            "p50": lags[(len(lags) - 1) // 2],
            "p95": lags[min(len(lags) - 1, (len(lags) * 95) // 100)],
        }

    def __repr__(self) -> str:
        return f"ConvergenceProbe(closed={len(self.closed)}, open={len(self._open)})"
