"""Trace post-processing: derive the experiment tables from the file.

Everything here operates on a decoded list of
:class:`~repro.obs.trace.TraceEvent` — no simulator, no cluster.  That
is the point: a ``--trace`` run leaves a JSONL file from which the
byte totals of the kv_repair/kv_rebalance tables can be *re-derived
and cross-checked* against the live counters, and
``python -m repro trace report`` renders a human timeline of what the
run did, phase by phase.

The only totals source is the ``send`` event, which the transport
emits at the exact point it records a :class:`MessageRecord` — before
the loss coin flip — so trace-derived totals equal
``MetricsCollector`` totals by construction, on the simulated and the
real TCP transport alike.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.trace import TraceEvent


def _table_helpers():
    # Imported lazily: repro.experiments pulls in the simulator and the
    # kv package, whose modules import repro.obs at module level —
    # a top-level import here would close that cycle.
    from repro.experiments.report import format_table, human_bytes

    return format_table, human_bytes

#: Store-level events of the digest-repair escalation, in escalation
#: order (root probe → fingerprint diff → inflating repair delta).
#: The scheduler batches inner repair messages into ``kv-batch``
#: envelopes on the wire, so repair traffic is only visible at these
#: deliver-side events — which carry the inner message's byte fields.
REPAIR_EVENTS = ("repair-probe", "repair-diff", "repair-absorb")

#: Store-level events of live rebalancing's shard handoff protocol.
HANDOFF_EVENTS = ("handoff-offer", "handoff-segment", "handoff-ack")

#: Event types that open a new phase in the timeline, and the phase
#: label each one starts.
_PHASE_MARKERS = {
    "crash": "crash",
    "recover": "recovery",
    "partition": "partition",
    "heal": "healed",
    "ring-change": "rebalance",
}


def trace_totals(events: List[TraceEvent]) -> Dict[str, int]:
    """Transmission totals re-derived from ``send`` events alone.

    Keys mirror the :class:`MetricsCollector` aggregates they must
    match: ``messages``, ``payload_bytes``, ``metadata_bytes``,
    ``payload_units``, ``metadata_units``.
    """
    totals = {
        "messages": 0,
        "payload_bytes": 0,
        "metadata_bytes": 0,
        "payload_units": 0,
        "metadata_units": 0,
    }
    for event in events:
        if event.type != "send":
            continue
        totals["messages"] += 1
        totals["payload_bytes"] += event.payload_bytes
        totals["metadata_bytes"] += event.metadata_bytes
        totals["payload_units"] += event.payload_units
        totals["metadata_units"] += event.metadata_units
    return totals


def kind_totals(events: List[TraceEvent]) -> Dict[str, Dict[str, int]]:
    """Per-wire-kind send totals: ``{kind: {messages, payload_bytes, metadata_bytes}}``."""
    out: Dict[str, Dict[str, int]] = {}
    for event in events:
        if event.type != "send":
            continue
        kind = event.kind or "?"
        bucket = out.setdefault(
            kind, {"messages": 0, "payload_bytes": 0, "metadata_bytes": 0}
        )
        bucket["messages"] += 1
        bucket["payload_bytes"] += event.payload_bytes
        bucket["metadata_bytes"] += event.metadata_bytes
    return out


def split_cells(
    events: List[TraceEvent],
) -> List[Tuple[Optional[str], List[TraceEvent]]]:
    """Group a trace by its ``cell-start`` markers.

    Returns ``[(label, events), ...]`` in stream order.  Events before
    the first marker (a trace produced without the experiment drivers)
    form one unlabeled cell, so every event belongs to exactly one
    group.
    """
    cells: List[Tuple[Optional[str], List[TraceEvent]]] = []
    current: List[TraceEvent] = []
    label: Optional[str] = None
    for event in events:
        if event.type == "cell-start":
            if current:
                cells.append((label, current))
            label = event.label
            current = [event]
        else:
            current.append(event)
    if current:
        cells.append((label, current))
    return cells


def segment_phases(
    events: List[TraceEvent],
) -> List[Tuple[str, List[TraceEvent]]]:
    """Cut one cell's events into fault-delimited phases.

    The stream opens in a ``traffic`` phase; each fault/membership
    marker (crash, recover, partition, heal, ring-change) starts a new
    phase named after it, with the marker event as its first member.
    """
    phases: List[Tuple[str, List[TraceEvent]]] = []
    label = "traffic"
    current: List[TraceEvent] = []
    for event in events:
        marker = _PHASE_MARKERS.get(event.type)
        if marker is not None:
            if current:
                phases.append((label, current))
            label = marker
            current = [event]
        else:
            current.append(event)
    if current:
        phases.append((label, current))
    return phases


def _phase_row(label: str, events: List[TraceEvent]) -> List[object]:
    totals = trace_totals(events)
    repair = sum(
        e.payload_bytes + e.metadata_bytes
        for e in events
        if e.type in REPAIR_EVENTS
    )
    handoff = sum(
        e.payload_bytes + e.metadata_bytes
        for e in events
        if e.type in HANDOFF_EVENTS
    )
    dropped = sum(1 for e in events if e.type == "message-dropped")
    rounds = {e.round for e in events if e.round is not None}
    return [
        label,
        len(rounds),
        totals["messages"],
        totals["payload_bytes"],
        totals["metadata_bytes"],
        repair,
        handoff,
        dropped,
    ]


def _timing_lines(events: List[TraceEvent]) -> List[str]:
    merged: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.type != "timing":
            continue
        for name, stats in event.extra.items():
            if not isinstance(stats, dict):
                continue
            bucket = merged.setdefault(
                name, {"calls": 0, "seconds": 0.0, "units": 0}
            )
            for key in ("calls", "seconds", "units"):
                bucket[key] += stats.get(key, 0)
    if not merged:
        return []
    format_table, _ = _table_helpers()
    rows = [
        [name, int(stats["calls"]), stats["seconds"] * 1000.0, int(stats["units"])]
        for name, stats in sorted(merged.items())
    ]
    return [
        "",
        format_table(
            ["hot path", "calls", "total ms", "units"], rows, title="timing"
        ),
    ]


def _lag_lines(events: List[TraceEvent]) -> List[str]:
    lags = sorted(
        event.extra.get("rounds", 0) for event in events if event.type == "lag"
    )
    if not lags:
        return []
    p50 = lags[(len(lags) - 1) // 2]
    p95 = lags[min(len(lags) - 1, (len(lags) * 95) // 100)]
    return [
        "",
        "convergence lag (rounds): "
        f"count={len(lags)} mean={sum(lags) / len(lags):.2f} "
        f"p50={p50} p95={p95} max={lags[-1]}",
    ]


def render_report(events: List[TraceEvent]) -> str:
    """The ``repro trace report`` body: per-cell, per-phase timeline."""
    if not events:
        return "empty trace"
    format_table, human_bytes = _table_helpers()
    blocks: List[str] = []
    for label, cell_events in split_cells(events):
        rows = [
            _phase_row(phase, phase_events)
            for phase, phase_events in segment_phases(cell_events)
        ]
        totals = trace_totals(cell_events)
        title = f"cell: {label}" if label else "trace"
        table = format_table(
            [
                "phase",
                "rounds",
                "sends",
                "payload B",
                "metadata B",
                "repair B",
                "handoff B",
                "dropped",
            ],
            rows,
            title=title,
        )
        footer = (
            f"total: {totals['messages']} messages, "
            f"{human_bytes(totals['payload_bytes'])} payload, "
            f"{human_bytes(totals['metadata_bytes'])} metadata"
        )
        lines = [table, footer]
        lines.extend(_timing_lines(cell_events))
        lines.extend(_lag_lines(cell_events))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
