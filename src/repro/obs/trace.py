"""The structured trace: an append-only JSONL stream of typed events.

The metrics registry (:mod:`repro.obs.metrics`) answers *how much* —
total repair bytes, handoff segments, WAL commits.  The trace answers
*why*: every byte that moves is attributable to an event — a scheduled
sync send, a digest probe that missed, a handoff segment, a WAL replay —
each stamped with the replica, shard, round, and wall-clock time it
happened at.  The experiment tables can therefore be *re-derived from
the trace file alone* and cross-checked against the live counters,
which is the property the integration tests pin down.

Design mirrors :mod:`repro.wal.storage`: a tiny :class:`TraceSink`
interface with a memory backend for the deterministic tests and a file
backend for real runs, written against by a single :class:`Tracer`
front-end that the cluster threads through every layer.  Tracing is
**off by default and zero-cost when off**: call sites hold ``tracer``
attributes that are simply ``None``, guarded by one attribute check —
no no-op object, no dormant format strings.

One line of the stream is one event, encoded as compact JSON with
sorted keys and defaults omitted, so seeded runs produce byte-identical
trace files.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

#: Every event type the stack can emit.  ``decode_event`` accepts
#: unknown types (forward compatibility for readers of old traces), but
#: ``Tracer.emit`` rejects them — a typo in an emission site should fail
#: the test that exercises it, not silently pollute the stream.
EVENT_TYPES = (
    # transport
    "round",            # a synchronization round completed
    "send",             # a message admitted to the wire (counted even if lost)
    "deliver",          # a message handed to the destination runtime
    "message-dropped",  # admitted but lost to the loss model
    "message-severed",  # in flight when the link went down
    "send-blocked",     # refused admission (dead link / crashed peer)
    # faults and membership
    "crash",
    "recover",
    "partition",
    "heal",
    "ring-change",      # replicas added/removed from the hash ring
    # digest-repair escalation (root probe → fingerprint diff → payload)
    "repair-probe",
    "repair-diff",
    "repair-absorb",
    # live rebalancing
    "handoff-offer",
    "handoff-segment",
    "handoff-ack",
    "handoff-fence",
    # write-ahead log
    "wal-commit",
    "wal-compact",
    "wal-replay",
    # probes and experiment structure
    "lag",              # a shard's root-hash disagreement window closed
    "cell-start",       # an experiment cell began (label = algorithm/mode)
    "cell-end",
    "timing",           # hot-path timer snapshot (extra = timer dict)
    # client front end (repro.serve)
    "client-op",        # a client request served (kind = get/put/remove/...)
    "read-repair",      # client-pushed repair state absorbed by a replica
)

_EVENT_TYPE_SET = frozenset(EVENT_TYPES)


@dataclass(frozen=True)
class TraceEvent:
    """One event of the stream.

    Only ``type`` and ``time`` are always meaningful; the remaining
    fields default to "absent" (``None`` / ``0`` / ``{}``) and are
    omitted from the encoded line, keeping traffic-heavy traces small.

    Attributes:
        type: One of :data:`EVENT_TYPES`.
        time: Transport wall-clock, in the transport's milliseconds.
        round: Synchronization round the event belongs to, when known.
        replica: The replica the event happened *at* (the sender for
            wire events).
        shard: The shard involved, for store/WAL/handoff events.
        peer: The other replica of a pairwise event (the destination
            for wire events, the source for absorb/handoff events).
        kind: The wire kind (``"kv-batch"``, ``"kv-digest"``, …) for
            message events.
        payload_bytes / metadata_bytes: Byte accounting, same split as
            :class:`repro.sync.protocol.Message`.
        payload_units / metadata_units: The paper's element-count
            accounting.
        label: Free-form tag (algorithm name for ``cell-start``).
        origin: The replica whose process *wrote* this event.  In
            single-process runs this stays ``None`` (one stream, one
            writer); multi-process runs stamp it so per-process trace
            files can be merged offline without losing attribution.
        extra: Event-specific JSON-native details.
    """

    type: str
    time: float = 0.0
    round: Optional[int] = None
    replica: Optional[int] = None
    shard: Optional[int] = None
    peer: Optional[int] = None
    kind: Optional[str] = None
    payload_bytes: int = 0
    metadata_bytes: int = 0
    payload_units: int = 0
    metadata_units: int = 0
    label: Optional[str] = None
    origin: Optional[int] = None
    extra: Dict[str, Any] = field(default_factory=dict)


_DEFAULTS = {
    "time": 0.0,
    "round": None,
    "replica": None,
    "shard": None,
    "peer": None,
    "kind": None,
    "payload_bytes": 0,
    "metadata_bytes": 0,
    "payload_units": 0,
    "metadata_units": 0,
    "label": None,
    "origin": None,
}

_FIELD_NAMES = tuple(f.name for f in fields(TraceEvent))


def encode_event(event: TraceEvent) -> str:
    """One compact, deterministic JSON line (no trailing newline).

    Fields holding their default are omitted; keys are sorted; no
    whitespace — so identical events encode to identical bytes and
    seeded runs produce byte-identical trace files.
    """
    record: Dict[str, Any] = {"type": event.type}
    for name, default in _DEFAULTS.items():
        value = getattr(event, name)
        if value != default:
            record[name] = value
    if event.extra:
        record["extra"] = event.extra
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def decode_event(line: str) -> TraceEvent:
    """Parse one line back into a :class:`TraceEvent`.

    Unknown keys are ignored (newer writers, older readers); missing
    keys take their defaults, so ``decode(encode(e)) == e`` for every
    event whose ``extra`` is JSON-native (tuples come back as lists).
    """
    record = json.loads(line)
    if not isinstance(record, dict) or "type" not in record:
        raise ValueError(f"not a trace event: {line!r}")
    kwargs = {key: record[key] for key in _FIELD_NAMES if key in record}
    return TraceEvent(**kwargs)


class TraceSink(ABC):
    """Where encoded event lines go; mirrors :class:`repro.wal.Storage`."""

    @abstractmethod
    def write(self, line: str) -> None:
        """Append one encoded event line to the stream."""

    def close(self) -> None:
        """Release any resources (a no-op for memory sinks)."""


class MemoryTraceSink(TraceSink):
    """Encoded lines in a list — the deterministic tests' backend."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def write(self, line: str) -> None:
        self.lines.append(line)

    def __len__(self) -> int:
        return len(self.lines)

    def __repr__(self) -> str:
        return f"MemoryTraceSink(events={len(self.lines)})"


class FileTraceSink(TraceSink):
    """Append-only JSONL file, truncated at construction.

    Lines are flushed as they are written so a crashed run leaves a
    readable (if truncated) trace — the same posture as the WAL's
    group commit, minus the fsync (traces are diagnostics, not
    durability).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "w", encoding="utf-8")

    def write(self, line: str) -> None:
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __repr__(self) -> str:
        return f"FileTraceSink(path={self.path!r})"


class Tracer:
    """The emission front-end every instrumented layer holds.

    A cluster builds one tracer and binds it to the transport's clock
    and round counter; every layer then emits through it without
    knowing what time it is.  Call sites never construct
    :class:`TraceEvent` themselves — :meth:`emit` fills in the ambient
    time and round.
    """

    def __init__(self, sink: TraceSink, *, origin: Optional[int] = None) -> None:
        self.sink = sink
        self.origin = origin
        self.events_written = 0
        self._clock: Callable[[], float] = lambda: 0.0
        self._rounds: Callable[[], Optional[int]] = lambda: None

    def bind(
        self,
        clock: Callable[[], float],
        rounds: Optional[Callable[[], Optional[int]]] = None,
    ) -> None:
        """Attach the ambient wall-clock (and round counter) sources."""
        self._clock = clock
        if rounds is not None:
            self._rounds = rounds

    def emit(
        self,
        type: str,
        *,
        time: Optional[float] = None,
        round: Optional[int] = None,
        replica: Optional[int] = None,
        shard: Optional[int] = None,
        peer: Optional[int] = None,
        kind: Optional[str] = None,
        payload_bytes: int = 0,
        metadata_bytes: int = 0,
        payload_units: int = 0,
        metadata_units: int = 0,
        label: Optional[str] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> TraceEvent:
        """Stamp, encode, and sink one event; returns it for tests."""
        if type not in _EVENT_TYPE_SET:
            raise ValueError(f"unknown trace event type {type!r}")
        event = TraceEvent(
            type=type,
            time=self._clock() if time is None else time,
            round=self._rounds() if round is None else round,
            replica=replica,
            shard=shard,
            peer=peer,
            kind=kind,
            payload_bytes=payload_bytes,
            metadata_bytes=metadata_bytes,
            payload_units=payload_units,
            metadata_units=metadata_units,
            label=label,
            origin=self.origin,
            extra=extra or {},
        )
        self.sink.write(encode_event(event))
        self.events_written += 1
        return event

    def close(self) -> None:
        self.sink.close()

    def __repr__(self) -> str:
        return f"Tracer(sink={self.sink!r}, events={self.events_written})"


def read_trace(source: Union[str, TraceSink, Iterable[str]]) -> List[TraceEvent]:
    """Decode a whole trace from a file path, a sink, or raw lines.

    A path naming a *directory* is treated as a set of per-process
    trace files and merged via :func:`read_trace_dir`.

    Blank lines are skipped (a crashed writer's partial final line will
    instead raise — a trace that lies is worse than one that fails).
    """
    if isinstance(source, str):
        if os.path.isdir(source):
            return read_trace_dir(source)
        with open(source, "r", encoding="utf-8") as handle:
            lines: Iterable[str] = handle.read().splitlines()
    elif isinstance(source, MemoryTraceSink):
        lines = source.lines
    elif isinstance(source, TraceSink):
        raise TypeError(f"cannot read back from {type(source).__name__}")
    else:
        lines = source
    return [decode_event(line) for line in lines if line.strip()]


def read_trace_dir(path: str) -> List[TraceEvent]:
    """Merge a directory of per-process ``.jsonl`` traces into one stream.

    Each replica process writes its own file (clocks start at process
    boot, so raw times are only comparable *within* a file); the merge
    therefore orders by ``(round, time)`` — the round counter is the
    cluster-wide logical clock the controller distributes — with the
    origin replica as the tie-break.  Events missing a round (boot-time
    replays, client ops between rounds) sort by time alone within
    round ``-1``.
    """
    events: List[TraceEvent] = []
    for name in sorted(os.listdir(path)):
        if name.startswith(".") or not name.endswith(".jsonl"):
            continue
        full = os.path.join(path, name)
        if os.path.isfile(full):
            events.extend(read_trace(full))
    events.sort(
        key=lambda e: (
            -1 if e.round is None else e.round,
            e.time,
            -1 if e.origin is None else e.origin,
        )
    )
    return events
