"""Observability for the replica stack: traces, metrics, timers, lag.

Four pieces, all optional and all off by default:

* :mod:`repro.obs.trace` — the structured JSONL event stream
  (:class:`Tracer` writing to a :class:`TraceSink`);
* :mod:`repro.obs.metrics` — the per-replica
  :class:`MetricsRegistry` of counters/gauges/histograms that the
  scheduler and WAL stats now live in;
* :mod:`repro.obs.timing` — :class:`HotPathTimers` around
  tick/encode/decode/absorb;
* :mod:`repro.obs.lag` — the :class:`ConvergenceProbe` sampling
  per-shard root-hash agreement;
* :mod:`repro.obs.report` — post-processing that re-derives the
  experiment tables from a trace file alone.
"""

from repro.obs.lag import ConvergenceProbe
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    kind_totals,
    render_report,
    segment_phases,
    split_cells,
    trace_totals,
)
from repro.obs.timing import HotPathTimers
from repro.obs.trace import (
    EVENT_TYPES,
    FileTraceSink,
    MemoryTraceSink,
    TraceEvent,
    Tracer,
    TraceSink,
    decode_event,
    encode_event,
    read_trace,
    read_trace_dir,
)

__all__ = [
    "ConvergenceProbe",
    "Counter",
    "EVENT_TYPES",
    "FileTraceSink",
    "Gauge",
    "Histogram",
    "HotPathTimers",
    "MemoryTraceSink",
    "MetricsRegistry",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "decode_event",
    "encode_event",
    "kind_totals",
    "read_trace",
    "read_trace_dir",
    "render_report",
    "segment_phases",
    "split_cells",
    "trace_totals",
]
