"""Hot-path timers: wall-clock plus the paper's element-count proxy.

The runtimes already measure ``perf_counter`` spans around tick,
deliver, and local_update to feed :class:`repro.sim.metrics
.MetricsCollector`'s processing aggregates.  :class:`HotPathTimers`
collects the same measurements *by name* — ``runtime.tick``,
``tcp.encode``, ``store.absorb`` — so a trace report can show where
the milliseconds went, not just that they were spent.

Two accounting dimensions per timer, matching the paper's evaluation:
wall-clock seconds (what the host actually burned) and element-count
units (the machine-independent processing proxy of Section V-B.4).

Off by default and zero-cost when off: instrumented objects hold a
``timers`` attribute that is ``None``, and every call site is guarded
by that single attribute check — no null-object indirection on the
hot path.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator


class _Timer:
    __slots__ = ("calls", "seconds", "units")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.units = 0


class HotPathTimers:
    """Named (calls, seconds, units) accumulators."""

    def __init__(self) -> None:
        self._timers: Dict[str, _Timer] = {}

    def record(self, name: str, units: int, seconds: float) -> None:
        """Fold one already-measured span into ``name``'s totals.

        The runtimes call this with the ``perf_counter`` spans they
        already take for the metrics collector, so enabling timers
        adds bookkeeping, never a second clock read.
        """
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = _Timer()
        timer.calls += 1
        timer.seconds += seconds
        timer.units += units

    @contextmanager
    def span(self, name: str, units: int = 0) -> Iterator[None]:
        """Time a block that has no pre-existing measurement.

        Used where no collector measurement exists to reuse — TCP frame
        encode/decode, store-level state absorption.
        """
        start = perf_counter()
        try:
            yield
        finally:
            self.record(name, units, perf_counter() - start)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{name: {calls, seconds, units}}``, names sorted."""
        return {
            name: {
                "calls": timer.calls,
                "seconds": timer.seconds,
                "units": timer.units,
            }
            for name, timer in sorted(self._timers.items())
        }

    def __len__(self) -> int:
        return len(self._timers)

    def __repr__(self) -> str:
        return f"HotPathTimers(names={sorted(self._timers)})"
