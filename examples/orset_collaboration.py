#!/usr/bin/env python
"""Collaborative task board on causal CRDTs (adds *and* removes).

A three-person team curates a shared task board while occasionally
offline.  The board is an observed-remove map of task name → assignee
register, backed by an add-wins set of labels per task — data types
beyond the paper's grow-only examples, synchronized with the very same
optimal-delta machinery (the paper's Appendix B claim, live):

1. concurrent edits to different tasks merge cleanly;
2. removing a task only cancels the edits the remover has *seen* — a
   concurrent assignment resurrects nothing but survives by design;
3. every mutation ships an optimal delta: one fresh dot (or none), no
   tombstoned payload.

Run with::

    python examples/orset_collaboration.py
"""

from repro import AWSet, Causal, CausalMVRegister, ORMap


def show(title, board):
    tasks = ", ".join(sorted(board.keys())) or "(empty)"
    print(f"{title:28s} {tasks}")


def labels_of(person, board, task):
    view = AWSet(person.replica, board.value_view(task))
    return sorted(view.value)


def main() -> None:
    print("=== Shared task labels: add-wins set under concurrency ===")
    ana, bo = AWSet("ana"), AWSet("bo")
    ana.add("urgent")
    ana.add("backend")
    bo.merge(ana)

    # Bo prunes 'urgent' while Ana — offline — re-confirms it.
    removal = bo.remove("urgent")
    readd = ana.add("urgent")
    print(f"bo's removal delta carries no payload: store empty = "
          f"{removal.store.is_empty}, context entries = {removal.context.size_units()}")

    ana.merge(removal)
    bo.merge(readd)
    assert ana.state == bo.state
    print(f"after exchange both see {sorted(ana.value)} — the concurrent add wins\n")

    print("=== Task board: OR-map of assignee registers ===")
    board_ana = ORMap("ana", value_bottom=Causal.fun_bottom())
    board_bo = ORMap("bo", value_bottom=Causal.fun_bottom())
    reg_ana = CausalMVRegister("ana")
    reg_bo = CausalMVRegister("bo")

    board_ana.update("ship-v2", lambda view: reg_ana.write_delta(view, "ana"))
    board_ana.update("fix-login", lambda view: reg_ana.write_delta(view, "bo"))
    board_bo.merge(board_ana)
    show("initial board:", board_ana)

    # Bo closes 'fix-login'; concurrently Ana reassigns it to Cai.
    closing = board_bo.remove("fix-login")
    board_ana.update("fix-login", lambda view: reg_ana.write_delta(view, "cai"))

    board_ana.merge(closing)
    board_bo.merge(board_ana)
    assert board_ana.state == board_bo.state
    show("after concurrent close/edit:", board_ana)
    assignees = {
        atom.value for atom in board_ana.value_view("fix-login").store.values()
    }
    print(f"'fix-login' survives with assignee {assignees} — only the observed "
          "edit was cancelled\n")

    print("=== Optimal deltas under churn ===")
    churn = AWSet("ana")
    for i in range(1000):
        churn.add(f"task-{i}")
        churn.remove(f"task-{i}")
    print(f"1000 add/remove cycles leave {len(churn)} elements, a store of "
          f"{churn.state.store.size_units()} entries and a context of "
          f"{churn.state.context.size_units()} compact entry — no tombstone growth")


if __name__ == "__main__":
    main()
