#!/usr/bin/env python
"""Quickstart: CRDTs, join decompositions, and optimal deltas.

Walks through the paper's core ideas on the two running examples
(GCounter, GSet):

1. replicas mutate locally and merge without coordination;
2. every state has a unique irredundant join decomposition ``⇓x``;
3. the optimal delta ``∆(a, b)`` ships exactly what the other replica
   is missing — never more.

Run with::

    python examples/quickstart.py
"""

from repro import GCounter, GSet, decomposition, delta


def counters() -> None:
    print("=== Grow-only counter (Figure 2a) ===")
    alice, bob = GCounter("alice"), GCounter("bob")

    alice.increment()
    alice.increment()
    bob.increment(by=5)
    print(f"alice sees {alice.value}, bob sees {bob.value}")

    # State-based sync: exchange and join full states — always safe,
    # converges even if messages are duplicated or reordered.
    alice.merge(bob)
    bob.merge(alice)
    print(f"after merge both see {alice.value} == {bob.value}")

    # The δ-mutator returns just the updated entry, not the whole map.
    d = alice.increment()
    print(f"one increment produces the delta {d} ({d.size_units()} entry)\n")


def sets_and_decompositions() -> None:
    print("=== Grow-only set, decompositions, optimal deltas (§III) ===")
    a, b = GSet("A"), GSet("B")
    for fruit in ("apple", "banana", "cherry"):
        a.add(fruit)
    for fruit in ("banana", "dragonfruit"):
        b.add(fruit)

    print(f"A = {sorted(a.value)}")
    print(f"B = {sorted(b.value)}")

    # ⇓x: the unique irredundant join decomposition — the singletons.
    parts = decomposition(a.state)
    print(f"⇓A has {len(parts)} join-irreducibles: {sorted(p for part in parts for p in part.elements)}")

    # ∆(a, b): the minimum state that brings B up to date with A.
    missing = delta(a.state, b.state)
    print(f"∆(A, B) = {sorted(missing.elements)}  (never re-ships 'banana')")

    b.merge(missing)
    a.merge(delta(b.state, a.state))
    assert a.state == b.state
    print(f"converged on {sorted(a.value)}\n")


def derived_delta_mutators() -> None:
    print("=== Deriving optimal δ-mutators: mδ(x) = ∆(m(x), x) (§III-B) ===")
    from repro import optimal_delta_mutator, SetLattice

    add_kiwi = optimal_delta_mutator(lambda s: s.add("kiwi"))
    fresh = SetLattice({"apple"})
    print(f"adding 'kiwi' to {set(fresh.elements)} → delta {add_kiwi(fresh)}")
    already = SetLattice({"kiwi", "apple"})
    print(f"adding 'kiwi' to {set(already.elements)} → delta is bottom: "
          f"{add_kiwi(already).is_bottom}")


if __name__ == "__main__":
    counters()
    sets_and_decompositions()
    derived_delta_mutators()
