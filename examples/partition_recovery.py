#!/usr/bin/env python
"""Reconciling replicas after a network partition with digests.

Two datacenters keep accepting writes to a shared shopping catalogue
(a grow-only map of product → stock counters) while partitioned from
each other.  When the partition heals, three reconciliation strategies
are compared (Section VI of the paper; Enes et al., PMLDC 2016):

* full bidirectional state exchange;
* state-driven: one full state, one optimal delta back;
* digest-driven: fingerprints of join decompositions travel instead of
  states, and only the genuinely missing irreducibles follow.

Run with::

    python examples/partition_recovery.py
"""

from repro import GMap, MaxInt
from repro.sizes import SizeModel
from repro.sync.digest import digest_driven_sync, full_state_sync, state_driven_sync

PRODUCTS = 800
DIVERGENT_WRITES = 40


def build_diverged_datacenters():
    """A long-shared history plus a burst of writes during a partition."""
    east, west = GMap("dc-east"), GMap("dc-west")

    # Shared history replicated before the partition.
    for product in range(PRODUCTS):
        key = f"product-{product:05d}"
        east.put(key, MaxInt(product % 50 + 1))
        west.merge(east.state)

    # The partition: each side keeps selling (bumping stock counters of
    # different products) without seeing the other.
    for i in range(DIVERGENT_WRITES):
        east.bump(f"product-{i:05d}")
        west.bump(f"product-{PRODUCTS - 1 - i:05d}")
    return east, west


def main() -> None:
    east, west = build_diverged_datacenters()
    model = SizeModel()
    print(f"catalogue: {PRODUCTS} products, {DIVERGENT_WRITES} divergent writes per side\n")

    strategies = (full_state_sync, state_driven_sync, digest_driven_sync)
    outcomes = [s(east.state, west.state, model) for s in strategies]

    for outcome in outcomes:
        print(
            f"{outcome.strategy:14s} {outcome.messages} messages, "
            f"{outcome.bytes_sent:>9,} bytes"
        )

    full, state, digest = outcomes
    assert full.converged_state == state.converged_state == digest.converged_state
    print(
        f"\nall strategies converge to the same state "
        f"({digest.converged_state.size_units()} entries);"
    )
    print(
        f"digest-driven moved {digest.bytes_sent / full.bytes_sent:.1%} of the bytes "
        "of a full exchange."
    )


if __name__ == "__main__":
    main()
