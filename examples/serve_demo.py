#!/usr/bin/env python
"""A guided tour of the serving layer: real processes, quorum reads.

Spawns a four-process replica cluster (each replica its own OS process
with a flock-guarded WAL directory), drives it through a client:

1. quorum writes and reads through the ring-aware ``KVClient``;
2. an ``r = 3`` read joining divergent replies and repairing the
   stale owners on the spot;
3. SIGKILL of one replica mid-traffic — the client retries onto the
   surviving owners and sees stale-at-worst, never-wrong values;
4. respawn over the surviving WAL directory: local replay restores
   the dead replica's shards, digest repair covers the divergence;
5. the quorum experiment table: latency percentiles vs observed
   staleness for ``r = 1`` vs a majority quorum.

Run with::

    PYTHONPATH=src python examples/serve_demo.py
"""

from repro.kv.antientropy import AntiEntropyConfig
from repro.serve import KVClient, ProcessCluster

SHARDS = 8
REPLICATION = 3


def banner(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main():
    banner("spawning 4 replica processes")
    cluster = ProcessCluster(
        4,
        shards=SHARDS,
        replication=REPLICATION,
        recovery="wal",
        antientropy=AntiEntropyConfig(
            repair_interval=2, repair_mode="digest", repair_fanout=4
        ),
    )
    try:
        for replica, (host, port) in sorted(cluster.client_addresses().items()):
            print(f"  replica {replica}: client plane at {host}:{port}")

        banner("typed writes through the client (w=2)")
        client = KVClient(
            cluster.client_addresses(),
            replicas=cluster.replicas,
            shards=SHARDS,
            replication=REPLICATION,
            r=1,
            w=2,
            route="random",
            seed=1,
        )
        client.put("gct:views", "increment", 10)
        client.put("set:tags", "add", "crdt")
        client.put("set:tags", "add", "serving")
        client.put("reg:motd", "write", "hello", 1)
        cluster.run_round(None)
        print(f"  gct:views = {client.get('gct:views')}")
        print(f"  set:tags  = {sorted(client.get('set:tags'))}")
        print(f"  reg:motd  = {client.get('reg:motd')}")

        banner("quorum read joins r replies (and repairs the stale)")
        # w=1: only the coordinator holds this write until anti-entropy
        # runs; the r=3 read still sees it — the join dominates.
        fresh = KVClient(
            cluster.client_addresses(),
            replicas=cluster.replicas,
            shards=SHARDS,
            replication=REPLICATION,
            r=REPLICATION,
            w=1,
            route="random",
            seed=2,
        )
        fresh.put("set:quorum", "add", "joined")
        print(f"  r=3 read: {fresh.get('set:quorum')}")
        print(
            f"  divergent reads: {fresh.stats['divergent_reads']}, "
            f"read repairs pushed: {fresh.stats['read_repairs']}"
        )
        fresh.close()

        banner("SIGKILL replica 3, keep writing")
        victim = 3
        cluster.crash(victim, lose_state=True)
        total = 10
        for _ in range(5):
            client.put("gct:views", "increment", 2)
            total += 2
        cluster.run_round(None)
        print(f"  down: {sorted(cluster.down)}, gct:views = {client.get('gct:views')}")

        banner("respawn over the surviving WAL directory")
        cluster.recover(victim)
        client.update_addresses(cluster.client_addresses())
        print(f"  replica {victim} replayed {cluster.replayed_shards(victim)} shards locally")
        rounds = cluster.drain()
        print(f"  drained in {rounds} rounds, converged: {cluster.converged()}")
        assert client.get("gct:views") == total, "a CRDT read can be stale, never wrong"
        print(f"  gct:views = {client.get('gct:views')} (all {total} increments survived)")
        wal = cluster.wal_stats()
        print(
            f"  wal: {wal['wal_committed_bytes']} B committed, "
            f"{wal['wal_replayed_bytes']} B replayed"
        )
        sched = cluster.scheduler_stats()
        print(
            f"  repair: {sched['probes']} probes, "
            f"{sched['repair_payload_bytes']} B repair payload"
        )
        client.close()
    finally:
        cluster.close()

    banner("quorum experiment: latency vs staleness")
    from repro.experiments import QuorumConfig, run_kv_quorum

    result = run_kv_quorum(
        QuorumConfig(replicas=4, shards=SHARDS, keys=24, batches=3, ops_per_batch=20)
    )
    print(result.render())


if __name__ == "__main__":
    main()
