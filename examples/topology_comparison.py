#!/usr/bin/env python
"""Where each optimization matters: BP on trees, RR on meshes.

Replays the grow-only-set micro-benchmark (Table I) on the two Figure 6
topologies with all four Algorithm 1 configurations plus state-based
synchronization, and prints the transmission ratios — a miniature of
the paper's Figure 7, runnable in seconds.

Run with::

    python examples/topology_comparison.py
"""

from repro.sim.runner import ratio_table, run_suite
from repro.sim.topology import partial_mesh, tree
from repro.sync import StateBased, classic, delta_bp, delta_bp_rr, delta_rr
from repro.workloads import GSetWorkload

NODES = 15
ROUNDS = 30

ALGORITHMS = {
    "state-based": StateBased,
    "delta-based (classic)": classic,
    "delta-based + BP": delta_bp,
    "delta-based + RR": delta_rr,
    "delta-based + BP+RR": delta_bp_rr,
}


def main() -> None:
    for name, topology in (
        ("tree (acyclic — BP suffices)", tree(NODES, 2)),
        ("partial mesh (cycles — RR is crucial)", partial_mesh(NODES, 4)),
    ):
        results = run_suite(
            ALGORITHMS, lambda: GSetWorkload(NODES, ROUNDS), topology
        )
        ratios = ratio_table(
            results, "delta-based + BP+RR", lambda r: r.transmission_units()
        )
        print(f"=== {name} ===")
        for label in ALGORITHMS:
            units = results[label].transmission_units()
            print(f"  {label:24s} {units:>10,} units   {ratios[label]:7.2f}x")
        print()

    print("Reading the numbers:")
    print(" * classic ≈ state-based on the mesh — the Figure 1 anomaly;")
    print(" * on the tree, BP alone already matches BP+RR;")
    print(" * on the mesh, BP barely helps: the same δ-groups arrive via")
    print("   multiple paths, and only RR's ∆-extraction removes them.")


if __name__ == "__main__":
    main()
