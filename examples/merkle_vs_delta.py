#!/usr/bin/env python
"""Hash-based anti-entropy vs optimal deltas (the paper's Section VI).

The paper's related-work section argues that hash-based reconciliation
(Merkle trees, à la Demers et al. / Byers et al.) pays two costs
delta-based synchronization avoids: round trips to *localize* the
divergence, and hashing work proportional to the whole state on every
exchange.  This example makes both costs visible on a two-replica link
where one new element must be reconciled into a large shared state.

Run with::

    python examples/merkle_vs_delta.py
"""

from repro import Cluster, ClusterConfig, SetLattice
from repro.sim.topology import line
from repro.sync import delta_bp_rr
from repro.sync.merkle import MerkleSync


def unique_add(node, tag):
    element = f"n{node}-{tag}"

    def add(state, e=element):
        if e in state:
            return state.bottom_like()
        return SetLattice((e,))

    return add


def reconcile_one_element(factory, label):
    cluster = Cluster(ClusterConfig(topology=line(2)), factory, SetLattice())

    # A large, fully synchronized shared state…
    cluster.run_round(lambda node: tuple(unique_add(node, f"seed{i}") for i in range(200)))
    cluster.drain()
    before = len(cluster.metrics.messages)

    # …then a single new element at node 0.
    cluster.run_round(lambda node: (unique_add(node, "fresh"),) if node == 0 else ())
    cluster.drain()

    exchange = cluster.metrics.messages[before:]
    messages = len(exchange)
    payload = sum(m.payload_units for m in exchange)
    metadata = sum(m.metadata_units for m in exchange)
    print(f"{label:12s} messages={messages:3d}  payload units={payload:3d}  "
          f"digest/metadata entries={metadata:4d}")
    return cluster


def main() -> None:
    print("Reconciling ONE new element into a 400-element shared state:\n")
    delta_cluster = reconcile_one_element(delta_bp_rr, "delta BP+RR")
    merkle_cluster = reconcile_one_element(MerkleSync, "merkle")

    assert delta_cluster.nodes[1].state == merkle_cluster.nodes[1].state

    hashing = sum(node.hash_operations for node in merkle_cluster.nodes)
    print(f"\nmerkle hashing work this run: {hashing} leaf hashes "
          "(recomputed over the full state every tick)")
    print("delta-based hashing work:     0")
    print("\nBoth converge to the same state; the delta ships the one new")
    print("element outright, while the hash-based protocol spends digest")
    print("round-trips finding it — Section VI's critique, quantified.")


if __name__ == "__main__":
    main()
