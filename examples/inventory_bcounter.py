#!/usr/bin/env python
"""Warehouse stock with a bounded counter: never oversell, never block.

Three regional fulfilment sites sell from one shared stock figure.  A
plain PNCounter would let two sites concurrently sell the last unit;
serializing every sale through one leader would forfeit availability.
The :class:`~repro.crdt.BCounter` threads the needle: each site may
only decrement against *rights* it holds locally, and rights move
between sites asynchronously as demand shifts — the numeric invariant
``stock ≥ 0`` holds globally with zero coordination on the sale path.

Run with::

    python examples/inventory_bcounter.py
"""

from repro import BCounter
from repro.crdt import InsufficientRights


def report(sites):
    view = sites["eu"]
    rights = ", ".join(f"{name}={view.rights_of(name)}" for name in sorted(sites))
    print(f"  stock={view.value:3d}   rights: {rights}")


def gossip(sites) -> None:
    for left in sites.values():
        for right in sites.values():
            if left is not right:
                left.merge(right)


def main() -> None:
    sites = {name: BCounter(name) for name in ("eu", "us", "jp")}
    eu, us, jp = sites["eu"], sites["us"], sites["jp"]

    print("EU restocks 100 units (minting 100 decrement rights):")
    eu.increment(100)
    gossip(sites)
    report(sites)

    print("\nEU provisions the other regions ahead of demand:")
    eu.transfer(30, to="us")
    eu.transfer(20, to="jp")
    gossip(sites)
    report(sites)

    print("\nRegions sell concurrently, no coordination:")
    us.decrement(25)
    jp.decrement(18)
    eu.decrement(40)
    gossip(sites)
    report(sites)

    print("\nJP demand spikes beyond its remaining rights:")
    try:
        jp.decrement(5)
    except InsufficientRights as refusal:
        print(f"  sale path refuses locally: {refusal}")

    print("  …US wires over spare rights:")
    us.transfer(5, to="jp")
    gossip(sites)
    jp.decrement(5)
    gossip(sites)
    report(sites)

    assert eu.value >= 0
    assert eu.state == us.state == jp.state
    total_rights = sum(eu.rights_of(name) for name in sites)
    print(f"\ninvariant intact: value {eu.value} == total rights {total_rights} ≥ 0")


if __name__ == "__main__":
    main()
