#!/usr/bin/env python
"""Retwis under contention: classic delta-based vs BP+RR.

Deploys the paper's Twitter-clone workload (Section V-C, Table II) on a
simulated partial-mesh cluster and compares classic delta-based
synchronization against BP+RR at low and high contention.  Also shows
the application actually working: a user's timeline read from one
replica reflects tweets posted at others.

Run with::

    python examples/retwis_demo.py
"""

from repro.sim.network import Cluster, ClusterConfig
from repro.sim.runner import run_suite
from repro.sim.topology import partial_mesh
from repro.sync import keyed_bp_rr, keyed_classic
from repro.workloads import RetwisWorkload
from repro.workloads.retwis import RetwisWorkload as Retwis

NODES = 12
USERS = 300
ROUNDS = 20
OPS_PER_NODE = 6


def compare_contention() -> None:
    print("=== classic vs BP+RR across contention (Figure 11 in miniature) ===")
    topology = partial_mesh(NODES, 4)
    for zipf in (0.5, 1.5):
        results = run_suite(
            {"classic": keyed_classic, "bp+rr": keyed_bp_rr},
            lambda z=zipf: RetwisWorkload(
                NODES, users=USERS, rounds=ROUNDS, ops_per_node=OPS_PER_NODE,
                zipf_coefficient=z, seed=11,
            ),
            topology,
        )
        classic_mb = results["classic"].transmission_bytes() / 2**20
        best_mb = results["bp+rr"].transmission_bytes() / 2**20
        label = "low" if zipf == 0.5 else "high"
        print(
            f"zipf={zipf} ({label} contention): classic shipped {classic_mb:7.2f} MiB, "
            f"bp+rr {best_mb:6.2f} MiB  →  {classic_mb / best_mb:5.2f}x"
        )
    print()


def application_view() -> None:
    print("=== the application actually works across replicas ===")
    topology = partial_mesh(NODES, 4)
    workload = RetwisWorkload(
        NODES, users=USERS, rounds=ROUNDS, ops_per_node=OPS_PER_NODE,
        zipf_coefficient=1.0, seed=11,
    )
    cluster = Cluster(ClusterConfig(topology), keyed_bp_rr, workload.bottom())
    cluster.run_rounds(workload.rounds, workload.updates_for)
    cluster.drain()
    assert cluster.converged()

    state = cluster.nodes[0].state  # read from replica 0
    # User 0 is the hottest Zipf rank: most followed, most tweets.
    hottest = 0
    followers = Retwis.read_followers(state, hottest)
    wall = Retwis.read_wall(state, hottest)
    print(f"user {hottest}: {len(followers)} followers, {len(wall)} tweets on wall")

    # A follower's timeline carries the celebrity's fanned-out tweets.
    fan = int(followers[0][1:])
    timeline = Retwis.read_timeline(state, fan, limit=5)
    print(f"follower {fan}'s timeline (5 most recent): {[t[:8] + '…' for t in timeline]}")
    print(f"replicas converged: {cluster.converged()}")


if __name__ == "__main__":
    compare_contention()
    application_view()
