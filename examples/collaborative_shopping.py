#!/usr/bin/env python
"""A collaborative shopping cart on composed CRDTs, fully synchronized.

A small e-commerce scenario exercising the CRDT catalogue beyond the
paper's micro-benchmarks:

* the cart's item quantities — a PNCounter per item (add/remove);
* the wishlist — a 2P-Set (items can be dismissed for good);
* the delivery note — an LWW register (last edit wins);
* the chosen payment method — an MV register (concurrent choices
  surface as a conflict for the app to resolve).

Three family members edit from three devices; delta-based BP+RR
synchronization over a simulated ring converges everything.

Run with::

    python examples/collaborative_shopping.py
"""

from repro import (
    LWWRegister,
    MVRegister,
    MapLattice,
    PNCounter,
    TwoPSet,
)
from repro.lattice import Lattice
from repro.sim.network import Cluster, ClusterConfig
from repro.sim.topology import ring
from repro.sync import keyed_bp_rr
from repro.workloads.base import Workload


class CartWorkload(Workload):
    """Scripted concurrent edits from three devices."""

    name = "shopping-cart"

    def __init__(self):
        super().__init__(n_nodes=3, rounds=3)
        # Per (round, device): a list of (object key, CRDT edit).
        self.script = {
            (0, 0): [
                ("cart:milk", ("inc", 2)),
                ("wish:drone", ("wish-add",)),
                # Concurrent with device 2's choice below: neither has
                # seen the other yet, so the MV register keeps both.
                ("pay", ("choose", "gift-card")),
            ],
            (0, 1): [("cart:milk", ("inc", 1)), ("note", ("write", "leave at door"))],
            (0, 2): [("pay", ("choose", "credit-card"))],
            (1, 0): [("cart:milk", ("dec", 1))],
            (1, 1): [("wish:drone", ("wish-drop",)), ("wish:lego", ("wish-add",))],
            (1, 2): [("note", ("write", "ring the bell twice"))],
            (2, 0): [("cart:eggs", ("inc", 12))],
            (2, 2): [("cart:eggs", ("inc", 6))],
        }

    def bottom(self) -> Lattice:
        return MapLattice()

    def updates_for(self, round_index, node):
        edits = self.script.get((round_index, node), [])
        mutators = []
        for key, edit in edits:
            mutators.append(self._mutator(node, key, edit))
        return mutators

    def _mutator(self, device, key, edit):
        def apply(state: MapLattice) -> MapLattice:
            current = state.get(key)
            kind = edit[0]
            if kind in ("inc", "dec"):
                counter = PNCounter(device, state=current) if current else PNCounter(device)
                delta = (
                    counter.increment(edit[1]) if kind == "inc" else counter.decrement(edit[1])
                )
            elif kind in ("wish-add", "wish-drop"):
                wish = TwoPSet(device, state=current) if current else TwoPSet(device)
                item = key.split(":", 1)[1]
                delta = wish.add(item) if kind == "wish-add" else wish.remove(item)
            elif kind == "write":
                note = LWWRegister(device, state=current) if current else LWWRegister(device)
                delta = note.write(edit[1])
            elif kind == "choose":
                pay = MVRegister(device, state=current) if current else MVRegister(device)
                delta = pay.write(edit[1])
            else:  # pragma: no cover - script is fixed
                raise ValueError(kind)
            if delta.is_bottom:
                return state.bottom_like()
            return MapLattice({key: delta})

        return apply


def main() -> None:
    workload = CartWorkload()
    cluster = Cluster(ClusterConfig(ring(3)), keyed_bp_rr, workload.bottom())
    cluster.run_rounds(workload.rounds, workload.updates_for)
    cluster.drain()
    assert cluster.converged(), "ring synchronization must converge"

    state = cluster.nodes[1].state  # any replica: they are identical
    milk = PNCounter("reader", state=state.get("cart:milk"))
    eggs = PNCounter("reader", state=state.get("cart:eggs"))
    drone = TwoPSet("reader", state=state.get("wish:drone"))
    lego = TwoPSet("reader", state=state.get("wish:lego"))
    note = LWWRegister("reader", state=state.get("note"))
    pay = MVRegister("reader", state=state.get("pay"))

    print("=== converged cart (read from any device) ===")
    print(f"milk: {milk.value}   (2 + 1 added, 1 removed)")
    print(f"eggs: {eggs.value}  (12 + 6 added concurrently)")
    print(f"wishlist drone: {'drone' in drone}  (added, then dismissed for good)")
    print(f"wishlist lego:  {'lego' in lego}")
    print(f"delivery note: {note.value!r} (last writer wins)")
    print(f"payment method: {pay.values} — concurrent choices kept for the app")


if __name__ == "__main__":
    main()
