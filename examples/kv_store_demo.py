#!/usr/bin/env python
"""Tour of the sharded CRDT key-value store (``repro.kv``).

A six-replica store, replication factor three, running delta-based
BP+RR anti-entropy per shard.  The demo walks through:

1. typed writes on a mixed keyspace — counters, sets, registers,
   an add-wins shopping cart — routed to shard owners by the ring;
2. convergence of every replica group after a few sync rounds;
3. a network partition with writes on both sides, healed by
   divergence-driven repair: digest probes over cold δ-paths that ship
   only the missing join decomposition;
4. a replica crash that loses its disk, restored the same way;
5. the bandwidth story: the identical workload under full-state push
   versus delta-based BP+RR, and the identical fault schedule under
   blanket full-state repair versus digest-escalated repair.

Run with::

    python examples/kv_store_demo.py
"""

from repro.experiments import KVConfig, run_kv_repair_comparison, run_kv_sweep
from repro.kv import AntiEntropyConfig, HashRing, KVCluster
from repro.sync import StateBased, keyed_bp_rr


def main() -> None:
    ring = HashRing(range(6), n_shards=16, replication=3)
    cluster = KVCluster(
        ring,
        keyed_bp_rr,
        antientropy=AntiEntropyConfig(
            repair_interval=3, repair_fanout=8, repair_mode="digest"
        ),
    )

    print("ring placement (first shards):")
    for shard in range(4):
        print(f"  shard {shard:2d} -> replicas {ring.shard_owners(shard)}")

    # --- 1. Typed writes through the smart-client routing. ------------
    cluster.update("cnt:balance", "increment", 100)
    cluster.update("cnt:balance", "decrement", 37)
    cluster.update("set:tags", "add", "crdt")
    cluster.update("set:tags", "add", "delta")
    cluster.update("reg:motd", "write", "all systems nominal", 1)
    cluster.update("aws:cart", "add", "milk")
    cluster.update("aws:cart", "add", "bread")

    # --- 2. A few synchronization rounds converge every group. --------
    cluster.run_round(updates=None)
    cluster.drain()
    print("\nafter sync:")
    print(f"  cnt:balance = {cluster.value('cnt:balance')}")
    print(f"  set:tags    = {sorted(cluster.value('set:tags'))}")
    print(f"  reg:motd    = {cluster.value('reg:motd')!r}")
    print(f"  aws:cart    = {sorted(cluster.value('aws:cart'))}")
    print(f"  converged   = {cluster.converged()}")

    # --- 3. Partition: both sides keep writing. -----------------------
    cluster.partition([0, 1, 2])
    cluster.update("set:tags", "add", "west-side")  # lands on a live owner
    for _ in range(2):
        cluster.run_round(updates=None)
    print(f"\npartitioned: converged = {cluster.converged()}")
    cluster.heal()
    cluster.drain()
    print(f"healed:      converged = {cluster.converged()}, "
          f"set:tags = {sorted(cluster.value('set:tags'))}")

    # --- 4. Crash with disk loss; repair restores the replica. --------
    cluster.crash(2, lose_state=True)
    cluster.update("aws:cart", "remove", "milk")
    for _ in range(2):
        cluster.run_round(updates=None)
    cluster.recover(2)
    cluster.drain()
    print(f"\nafter crash+recover: converged = {cluster.converged()}, "
          f"aws:cart = {sorted(cluster.value('aws:cart'))}")

    # --- 5. Bytes on the wire: state-based vs delta BP+RR. ------------
    config = KVConfig(replicas=6, keys=200, rounds=8, ops_per_node=4, shards=16)
    sweep = run_kv_sweep(config, ("state-based", "delta-based-bp-rr"))
    state = sweep.total_bytes("state-based")
    delta = sweep.total_bytes("delta-based-bp-rr")
    print(f"\nsame workload, 6 replicas, 200 keys:")
    print(f"  state-based       {state:>9,} bytes on the wire")
    print(f"  delta-based BP+RR {delta:>9,} bytes on the wire "
          f"({delta / state:.1%} of full-state push)")

    # --- 6. Repair bytes: blanket push vs divergence-driven digests. --
    faults = run_kv_repair_comparison(
        KVConfig(replicas=6, keys=200, rounds=9, ops_per_node=4, shards=16,
                 repair_interval=3, repair_fanout=8)
    )
    blanket = faults.cell("blanket")
    digest = faults.cell("digest")
    print(f"\nsame faults (partition + heal + crash with disk loss):")
    print(f"  blanket repair    {blanket.repair_bytes:>9,} repair bytes")
    print(f"  digest repair     {digest.repair_bytes:>9,} repair bytes "
          f"({digest.repair_bytes / blanket.repair_bytes:.1%}, "
          f"{digest.probes} probes)")


if __name__ == "__main__":
    main()
